"""Command-line interface for the multiscalar reproduction.

Subcommands:

* ``run FILE``       — run a program (``.mc`` MinC or ``.s``/``.asm``
  assembly) on the scalar baseline or a multiscalar machine;
* ``compile FILE``   — compile MinC to assembly text;
* ``disasm FILE``    — print the annotated listing and task descriptors;
* ``workloads``      — list or run the paper's benchmark stand-ins;
* ``tables N``       — regenerate a table of the paper's evaluation;
* ``fuzz``           — differential fuzzing: run seeded random programs
  on every backend and diff the results (exit 1 on divergence);
* ``sweep``          — run a workload × configuration grid through the
  sharded job engine with persistent result caching;
* ``explore``        — design-space autopilot: a seeded search over
  hardware axes and compiler knobs that renders per-workload Pareto
  frontiers (cycles vs hardware cost) and writes deterministic
  Markdown/JSON reports;
* ``bench``          — measure simulator throughput (simulated cycles
  per wall-clock second), write ``BENCH_simulator.json``, and
  optionally gate against the committed baseline;
* ``chaos``          — fault-injection harness: SIGKILL workers, plant
  truncated checkpoints, corrupt cache files, and plant a livelock,
  then require bit-identical results (exit 1 on any surprise);
* ``trace``          — run one workload or program with the structured
  event bus attached and export a Chrome trace-event JSON file
  (Perfetto/``chrome://tracing``) plus a terminal cycle-attribution
  flamegraph;
* ``cache``          — inspect or purge the persistent result store
  (``--stats`` prints entry count, bytes, and hit/miss tallies);
* ``serve``          — run the simulation-as-a-service HTTP server: a
  persistent leased worker daemon behind a JSON job API, sharing the
  content-addressed result store with standalone runs (``sweep`` and
  ``fuzz`` accept ``--server URL`` to run as thin clients of it).

Examples::

    python -m repro run program.mc --units 8 --timeline
    python -m repro run kernel.s --entries loop --issue 2 --ooo
    python -m repro workloads --run cmp --units 4
    python -m repro tables 2
    python -m repro fuzz --seed 7 --budget 200 --jobs 4
    python -m repro sweep --workloads wc,cmp --units 1,4 --jobs 4
    python -m repro explore gcc --budget 30 --seed 7 --out reports/
    python -m repro explore all --budget 40 --jobs 4
    python -m repro bench --quick --check
    python -m repro chaos --self-test
    python -m repro trace wc --units 8 --out trace.json
    python -m repro trace wc --categories task,ring,arb --window 0:5000
    python -m repro cache --purge
    python -m repro cache --stats
    python -m repro serve --port 8642 --jobs 4
    python -m repro sweep --server http://127.0.0.1:8642 --workloads wc
    python -m repro fuzz --server http://127.0.0.1:8642 --budget 50
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import annotate_program
from repro.config import multiscalar_config, scalar_config
from repro.core import MultiscalarProcessor, ScalarProcessor
from repro.core.tracer import TaskTracer
from repro.isa import Program, assemble
from repro.minic import compile_and_annotate, compile_minic, compile_scalar


def _load_program(path: str, multiscalar: bool,
                  entries: list[str], auto_loops: bool) -> Program:
    """Compile/assemble ``path`` (.mc/.minc or assembly) into a
    Program, annotated for multiscalar execution when requested."""
    text = Path(path).read_text()
    if path.endswith(".mc") or path.endswith(".minc"):
        if multiscalar:
            return compile_and_annotate(text, path, extra_entries=entries,
                                        auto_loops=auto_loops)
        return compile_scalar(text, path)
    program = assemble(text, path)
    if multiscalar:
        return annotate_program(program, task_entries=entries,
                                auto_loops=auto_loops)
    return program


def cmd_run(args: argparse.Namespace) -> int:
    """Entry point for ``repro run``: simulate one program on
    the scalar baseline or a multiscalar machine."""
    multiscalar = args.units > 1 or args.multiscalar
    program = _load_program(args.file, multiscalar, args.entries,
                            args.auto_loops)
    fast_path = not args.no_fast_path
    jit = not args.no_jit
    if multiscalar:
        config = multiscalar_config(args.units, args.issue, args.ooo,
                                    fast_path=fast_path, jit=jit)
        processor = MultiscalarProcessor(program, config)
        tracer = TaskTracer().attach(processor) if args.timeline else None
        result = processor.run(max_cycles=args.max_cycles)
        print(result.output, end="")
        if result.output and not result.output.endswith("\n"):
            print()
        print(f"-- {result.cycles} cycles, {result.instructions} "
              f"instructions retired (IPC {result.ipc:.2f})",
              file=sys.stderr)
        print(f"-- tasks: {result.tasks_retired} retired, "
              f"{result.tasks_squashed} squashed "
              f"(mispredict {result.squashes_mispredict}, "
              f"memory {result.squashes_memory}, "
              f"ARB {result.squashes_arb}); "
              f"prediction {result.prediction_accuracy:.1%}",
              file=sys.stderr)
        if args.stats:
            for key, value in result.distribution.as_dict().items():
                print(f"--   {key}: {value}", file=sys.stderr)
        if tracer is not None:
            print(tracer.render(), file=sys.stderr)
            print("-- " + tracer.summary(), file=sys.stderr)
    else:
        config = scalar_config(args.issue, args.ooo, fast_path=fast_path,
                               jit=jit)
        result = ScalarProcessor(program, config).run(
            max_cycles=args.max_cycles)
        print(result.output, end="")
        if result.output and not result.output.endswith("\n"):
            print()
        print(f"-- {result.cycles} cycles, {result.instructions} "
              f"instructions (IPC {result.ipc:.2f})", file=sys.stderr)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Entry point for ``repro compile``: MinC to assembly text."""
    unit = compile_minic(Path(args.file).read_text(), args.file)
    output = unit.asm
    if unit.task_labels:
        output += "\n# parallel task entries: " \
            + ", ".join(unit.task_labels) + "\n"
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    """Entry point for ``repro disasm``: print the annotated
    listing and task descriptors of a program."""
    program = _load_program(args.file, args.multiscalar, args.entries,
                            args.auto_loops)
    print(program.listing())
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    """Entry point for ``repro workloads``: list the paper's
    benchmark stand-ins, or run one against its scalar baseline."""
    from repro.workloads import WORKLOADS

    if not args.run:
        for name, spec in WORKLOADS.items():
            print(f"{name:10} {spec.paper_benchmark:28} "
                  f"{spec.description}")
        return 0
    from repro.engine import SimulationMismatchError

    spec = WORKLOADS[args.run]
    scalar = ScalarProcessor(spec.scalar_program(), scalar_config()).run()
    processor = MultiscalarProcessor(spec.multiscalar_program(),
                                     multiscalar_config(args.units))
    result = processor.run()
    if result.output != spec.expected_output:
        raise SimulationMismatchError(
            f"{args.run}: multiscalar output {result.output!r} does not "
            f"match expected {spec.expected_output!r}")
    print(f"{args.run}: scalar {scalar.cycles} cycles, "
          f"{args.units}-unit multiscalar {result.cycles} cycles "
          f"(speedup {scalar.cycles / result.cycles:.2f}x, "
          f"prediction {result.prediction_accuracy:.1%})")
    return 0


def _apply_cache_flags(args: argparse.Namespace) -> None:
    """Apply --cache-dir/--purge-cache/--no-cache before a
    harness command touches the store."""
    from repro.harness import runner

    if getattr(args, "cache_dir", None):
        import os

        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    if getattr(args, "purge_cache", False):
        removed = runner.clear_cache(persistent=True)
        print(f"cache: purged {removed} stored results", file=sys.stderr)
    if getattr(args, "no_cache", False):
        runner.set_persistent_cache(False)
        runner.clear_cache()


def cmd_tables(args: argparse.Namespace) -> int:
    """Entry point for ``repro tables``: regenerate one of the
    paper's evaluation tables (1-4)."""
    from repro.harness import (
        format_table1,
        format_table2,
        format_table3,
        table2_rows,
        table3_rows,
        table4_rows,
    )

    _apply_cache_flags(args)
    if args.number == 1:
        print(format_table1())
    elif args.number == 2:
        print(format_table2(table2_rows()))
    elif args.number == 3:
        print(format_table3(table3_rows(args.names or None)))
    elif args.number == 4:
        print(format_table3(table4_rows(args.names or None),
                            out_of_order=True))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Entry point for ``repro report``: run the whole
    evaluation and write the paper-vs-measured report."""
    from repro.harness.report import generate_report

    _apply_cache_flags(args)
    text = generate_report(quick=args.quick)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Entry point for ``repro fuzz``: differential fuzzing of
    every backend; exits non-zero on a divergence."""
    from repro.difftest import (
        FuzzCampaign,
        inject_jit_guard_miss,
        inject_opcode_bug,
    )
    from repro.difftest.generator import generator_for
    from repro.isa.opcodes import Op

    jit_guard_modes = {"jit-stop": "stop",
                       "jit-taken-branch": "taken-branch"}
    try:
        for language in args.languages:
            generator_for(language)
        campaign = FuzzCampaign(
            seed=args.seed, budget=args.budget,
            languages=tuple(args.languages),
            units=tuple(args.units), widths=tuple(args.widths),
            orders=(False, True) if args.ooo == "both"
            else (args.ooo == "ooo",),
            fast_paths=(True, False) if args.no_fast_path else (True,),
            # A JIT guard-miss self-test needs the no-jit axis in the
            # grid: the same-machine interpreter is the reference the
            # buggy compiled code diverges from.
            jits=(True, False)
            if args.no_jit or args.self_test in jit_guard_modes
            else (True,),
            max_shrink_checks=args.max_shrink_checks,
            jobs=args.jobs,
            server=args.server,
            progress=lambda message: print(f"fuzz: {message}",
                                           file=sys.stderr))
        if args.self_test and args.server:
            # The injected bug lives in this process; server workers
            # would run the un-sabotaged simulator and "miss" it.
            raise ValueError("--self-test cannot run against --server")
        if args.self_test \
                and args.self_test not in jit_guard_modes \
                and args.self_test.upper() not in Op.__members__:
            raise ValueError(
                f"unknown opcode {args.self_test!r} for --self-test "
                f"(or one of: {', '.join(sorted(jit_guard_modes))})")
    except ValueError as error:
        print(f"repro fuzz: error: {error}", file=sys.stderr)
        return 2
    if args.self_test:
        # Plant a bug — a semantics bug in the multiscalar backend, or
        # a guard miss in the JIT's compiled bodies — and demand the
        # campaign catches it: a check that the oracle itself still has
        # teeth.
        if args.self_test in jit_guard_modes:
            injector = inject_jit_guard_miss(
                jit_guard_modes[args.self_test])
        else:
            injector = inject_opcode_bug(Op[args.self_test.upper()])
        with injector:
            result = campaign.run()
        print(result.render())
        if result.ok:
            print("fuzz: self-test FAILED -- injected "
                  f"{args.self_test} bug went undetected", file=sys.stderr)
            return 1
        print(f"fuzz: self-test ok -- injected {args.self_test} bug "
              "was caught and shrunk", file=sys.stderr)
        return 0
    if args.server:
        from repro.server import ServerError

        try:
            result = campaign.run()
        except ServerError as error:
            print(f"repro fuzz: server error: {error}", file=sys.stderr)
            return 2
    else:
        result = campaign.run()
    print(result.render())
    if result.interrupted:
        print("fuzz: interrupted; partial results above", file=sys.stderr)
        return 130
    return 0 if result.ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Entry point for ``repro sweep``: run a workload x config
    grid through the job engine with persistent caching."""
    from repro.engine import ResultStore, persistent_cache_enabled
    from repro.engine.sweep import SweepRequest, render_timelines, run_sweep
    from repro.harness.paper_data import ROW_ORDER
    from repro.workloads import WORKLOADS

    _apply_cache_flags(args)
    workloads = tuple(args.workloads) if args.workloads else tuple(ROW_ORDER)
    unknown = [name for name in workloads if name not in WORKLOADS]
    if unknown:
        print(f"repro sweep: error: unknown workloads {unknown}",
              file=sys.stderr)
        return 2
    request = SweepRequest(
        workloads=workloads,
        units=tuple(args.units),
        widths=tuple(args.widths),
        orders=(False, True) if args.ooo == "both"
        else (args.ooo == "ooo",),
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        use_cache=not args.no_cache,
        self_test=args.self_test,
        max_cycles=args.max_cycles,
        fast_path=not args.no_fast_path,
        jit=not args.no_jit,
    )
    progress = (lambda message: print(f"sweep: {message}",
                                      file=sys.stderr))
    if args.server:
        from repro.engine.sweep import run_sweep_via_server
        from repro.server import ServerError

        try:
            summary = run_sweep_via_server(request, args.server,
                                           progress=progress)
        except ServerError as error:
            print(f"repro sweep: server error: {error}", file=sys.stderr)
            return 2
    else:
        store = None
        if request.use_cache and persistent_cache_enabled():
            store = ResultStore()
        summary = run_sweep(request, store, progress=progress)
    print(summary.render())
    if args.metrics:
        if summary.metrics is not None:
            print()
            print("aggregated metrics (all grid cells, cached + fresh):")
            print(summary.metrics.render())
        if summary.cells_without_metrics:
            print(f"note: {summary.cells_without_metrics} of "
                  f"{summary.total_jobs} payloads carried no metrics "
                  "(pre-metrics cache entries); the aggregate above "
                  "under-counts them. Re-run with --fresh to regenerate.")
    if summary.interrupted:
        print("sweep: interrupted; completed results were persisted",
              file=sys.stderr)
        return 130
    if args.timeline:
        print(render_timelines(request))
    if args.self_test:
        if summary.worker_deaths < 1 or not summary.ok:
            print("sweep: self-test FAILED -- the killed worker's job "
                  "was not recovered by retry", file=sys.stderr)
            return 1
        print(f"sweep: self-test ok -- {summary.worker_deaths} worker "
              "death(s) recovered by retry, grid complete",
              file=sys.stderr)
    if args.require_hit_rate is not None \
            and summary.hit_rate < args.require_hit_rate:
        print(f"sweep: persistent-cache hit rate "
              f"{100.0 * summary.hit_rate:.1f}% is below the required "
              f"{100.0 * args.require_hit_rate:.1f}%", file=sys.stderr)
        return 1
    return 0 if summary.ok else 1


def _explore_self_test(args: argparse.Namespace) -> int:
    """``repro explore --self-test``: run a tiny search twice against a
    private store; require byte-identical reports and a fully-cached
    second run."""
    import json as _json
    import tempfile

    from repro.engine import ResultStore
    from repro.explore import (
        ExploreRequest,
        LocalEvaluator,
        build_report,
        run_explore,
        validate_report,
    )

    with tempfile.TemporaryDirectory() as tmp:
        request = ExploreRequest(workloads=("cmp",), budget=6,
                                 seed=args.seed,
                                 max_cycles=args.max_cycles)
        store = ResultStore(tmp)
        blobs, fresh = [], []
        for _ in range(2):
            evaluator = LocalEvaluator(store, jobs=1,
                                       max_cycles=request.max_cycles)
            summary = run_explore(request, evaluator)
            report = build_report(summary)
            validate_report(report)
            blobs.append(_json.dumps(report, sort_keys=True))
            fresh.append(summary.fresh_runs)
    if blobs[0] != blobs[1]:
        print("explore: self-test FAILED -- two identical runs produced "
              "different reports", file=sys.stderr)
        return 1
    if fresh[1] != 0:
        print(f"explore: self-test FAILED -- warm re-run simulated "
              f"{fresh[1]} fresh jobs (expected 0)", file=sys.stderr)
        return 1
    print(f"explore: self-test ok -- deterministic report, warm re-run "
          f"fully cached ({fresh[0]} cold simulations)", file=sys.stderr)
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Entry point for ``repro explore``: the design-space autopilot."""
    from repro.engine import ResultStore, persistent_cache_enabled
    from repro.explore import (
        ExploreRequest,
        LocalEvaluator,
        ServerEvaluator,
        build_report,
        render_terminal,
        run_explore,
        validate_report,
        write_report,
    )
    from repro.workloads import WORKLOADS

    _apply_cache_flags(args)
    if args.budget < 1:
        print(f"repro explore: error: --budget must be >= 1, "
              f"got {args.budget}", file=sys.stderr)
        return 2
    if args.self_test:
        return _explore_self_test(args)
    if args.target == "all":
        workloads = tuple(sorted(WORKLOADS))
    else:
        workloads = tuple(args.target.split(","))
        unknown = [name for name in workloads if name not in WORKLOADS]
        if unknown:
            print(f"repro explore: error: unknown workloads {unknown}",
                  file=sys.stderr)
            return 2
    request = ExploreRequest(
        workloads=workloads, budget=args.budget, seed=args.seed,
        max_cycles=args.max_cycles, jobs=args.jobs, timeout=args.timeout,
        retries=args.retries, use_cache=not args.no_cache)
    progress = (lambda message: print(f"explore: {message}",
                                      file=sys.stderr))
    if args.server:
        from repro.server import ServerError

        evaluator = ServerEvaluator(args.server, timeout=args.timeout,
                                    max_cycles=args.max_cycles,
                                    progress=progress)
        try:
            summary = run_explore(request, evaluator, progress=progress)
        except ServerError as error:
            print(f"repro explore: server error: {error}", file=sys.stderr)
            return 2
    else:
        store = None
        if request.use_cache and persistent_cache_enabled():
            store = ResultStore()
        evaluator = LocalEvaluator(store, jobs=args.jobs,
                                   timeout=args.timeout,
                                   retries=args.retries,
                                   max_cycles=args.max_cycles,
                                   progress=progress)
        summary = run_explore(request, evaluator, progress=progress)
        if store is not None:
            store.flush_counters()
    report = build_report(summary)
    validate_report(report)
    print(render_terminal(report))
    print(f"explore: {summary.fresh_runs} fresh simulations, "
          f"{summary.cache_hits} cache hits "
          f"(hit rate {100.0 * summary.hit_rate:.1f}%)", file=sys.stderr)
    if args.out:
        json_path, md_path = write_report(report, args.out)
        print(f"explore: wrote {json_path} and {md_path}",
              file=sys.stderr)
    if args.require_hit_rate is not None \
            and summary.hit_rate < args.require_hit_rate:
        print(f"explore: cache hit rate "
              f"{100.0 * summary.hit_rate:.1f}% is below the required "
              f"{100.0 * args.require_hit_rate:.1f}%", file=sys.stderr)
        return 1
    return 0 if summary.ok else 1


def _bench_mode(payload: dict) -> str:
    if not payload.get("fast_path", True):
        return "reference path"
    return "jit" if payload.get("jit") else "fast path, no jit"


def cmd_bench(args: argparse.Namespace) -> int:
    """Entry point for ``repro bench``: measure simulator
    throughput and optionally gate against the committed baseline."""
    from repro.harness import bench

    progress = (lambda message: print(f"bench: {message}",
                                      file=sys.stderr))
    payload = bench.run_bench(quick=args.quick,
                              fast_path=not args.no_fast_path,
                              jit=not args.no_jit,
                              profile=not args.no_profile,
                              progress=progress)
    bench.write_payload(payload, args.output)
    total = payload["total"]
    print(f"bench: {total['cycles']} simulated cycles in "
          f"{total['wall_seconds']:.2f}s -- "
          f"{total['cycles_per_second']:,.0f} cycles/sec "
          f"({_bench_mode(payload)})")
    print(f"bench: wrote {args.output}", file=sys.stderr)
    overhead = payload.get("trace_overhead")
    if args.check and overhead is not None \
            and overhead["overhead"] > args.max_trace_overhead:
        print(f"bench: tracing-disabled overhead "
              f"{overhead['overhead']:+.2%} on {overhead['case']} "
              f"exceeds the {args.max_trace_overhead:.0%} budget",
              file=sys.stderr)
        return 1
    baseline = bench.load_baseline(args.baseline)
    if baseline is None:
        if args.check:
            print(f"bench: no baseline at {args.baseline}; nothing to "
                  "gate against", file=sys.stderr)
        return 0
    ok, lines = bench.compare_to_baseline(payload, baseline,
                                          args.max_regression)
    for line in lines:
        print(f"bench: {line}")
    if args.check and not ok:
        print("bench: throughput regression exceeds "
              f"{args.max_regression:.0%}", file=sys.stderr)
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Entry point for ``repro chaos``: sabotage a sweep (killed
    workers, corrupt state) and require bit-identical results."""
    from repro.resilience.chaos import (
        ChaosRequest,
        run_chaos,
        self_test_request,
    )

    from repro.workloads import WORKLOADS

    if args.self_test:
        request = self_test_request()
    else:
        unknown = [name for name in args.workloads
                   if name not in WORKLOADS]
        if unknown:
            print(f"repro chaos: error: unknown workloads {unknown}",
                  file=sys.stderr)
            return 2
        request = ChaosRequest(workloads=tuple(args.workloads),
                               units=tuple(args.units),
                               jobs=args.jobs,
                               checkpoint_every=args.checkpoint_every)
    report = run_chaos(
        request,
        progress=lambda message: print(f"chaos: {message}",
                                       file=sys.stderr))
    print(report.render())
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Entry point for ``repro trace``: run one workload or program
    with the structured event bus attached, write a Chrome trace-event
    JSON file, and print a cycle-attribution flamegraph."""
    from repro.observability import (
        Category,
        EventBus,
        chrome_trace,
        collect_metrics,
        render_flamegraph,
        validate_chrome_trace,
        write_chrome_trace,
    )

    try:
        categories = Category.parse(args.categories)
    except ValueError as error:
        print(f"repro trace: error: {error}", file=sys.stderr)
        return 2
    window = None
    if args.window:
        start_text, sep, end_text = args.window.partition(":")
        try:
            if not sep:
                raise ValueError
            window = (int(start_text) if start_text else 0,
                      int(end_text) if end_text else 1 << 62)
        except ValueError:
            print("repro trace: error: --window takes START:END cycle "
                  "bounds (either side may be empty)", file=sys.stderr)
            return 2
    multiscalar = args.units > 1 or args.multiscalar
    from repro.workloads import WORKLOADS

    if args.target in WORKLOADS:
        spec = WORKLOADS[args.target]
        program = spec.multiscalar_program() if multiscalar \
            else spec.scalar_program()
        label = f"{args.target}:" \
            + (f"ms{args.units}" if multiscalar else "scalar")
    elif not Path(args.target).exists():
        print(f"repro trace: error: {args.target!r} is neither a "
              f"workload ({', '.join(sorted(WORKLOADS))}) nor a "
              f"program file", file=sys.stderr)
        return 2
    else:
        program = _load_program(args.target, multiscalar, args.entries,
                                args.auto_loops)
        label = Path(args.target).name
    fast_path = not args.no_fast_path
    jit = not args.no_jit
    if multiscalar:
        processor = MultiscalarProcessor(
            program, multiscalar_config(args.units, args.issue, args.ooo,
                                        fast_path=fast_path, jit=jit))
    else:
        processor = ScalarProcessor(
            program, scalar_config(args.issue, args.ooo,
                                   fast_path=fast_path, jit=jit))
    bus = EventBus(categories, window=window).attach(processor)
    result = processor.run(max_cycles=args.max_cycles)
    trace = chrome_trace(bus, num_units=args.units if multiscalar else 1,
                         total_cycles=result.cycles, label=label)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems[:10]:
            print(f"repro trace: invalid trace: {problem}",
                  file=sys.stderr)
        return 1
    write_chrome_trace(args.out, trace)
    print(f"trace: {len(bus.events)} events ({bus.dropped} filtered) "
          f"over {result.cycles} cycles -> {args.out}", file=sys.stderr)
    print("trace: load it in https://ui.perfetto.dev or chrome://tracing",
          file=sys.stderr)
    if multiscalar:
        print(render_flamegraph(result))
    else:
        print(f"{result.cycles} cycles, IPC {result.ipc:.2f}")
    if args.metrics:
        print(collect_metrics(processor).render())
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Entry point for ``repro cache``: inspect or purge the
    persistent result store."""
    from repro.engine import ResultStore

    _apply_cache_flags(args)
    store = ResultStore()
    if args.purge:
        removed = store.purge()
        print(f"cache: purged {removed} stored results "
              f"from {store.root}")
        return 0
    if args.stats:
        stats = store.stats()
        reads = stats["hits"] + stats["misses"]
        rate = stats["hits"] / reads if reads else 0.0
        print(f"cache: {stats['entries']} entries, "
              f"{stats['bytes']:,} bytes under {store.root}")
        print(f"cache: lifetime {stats['hits']} hits / "
              f"{stats['misses']} misses "
              f"(hit rate {100.0 * rate:.1f}%), "
              f"{stats['writes']} writes")
        return 0
    print(f"cache: {len(store)} stored results under {store.root}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Entry point for ``repro serve``: run the simulation job
    server — an asyncio HTTP API over the leased worker daemon — until
    interrupted (Ctrl-C drains the queue and exits 130)."""
    from repro.engine import ResultStore, persistent_cache_enabled
    from repro.server import ReproServer

    _apply_cache_flags(args)
    store = None
    if not args.no_cache and persistent_cache_enabled():
        store = ResultStore()
    server = ReproServer(
        workers=args.jobs, lease_ttl=args.lease_ttl,
        timeout=args.timeout, retries=args.retries,
        max_queue=args.max_queue, quota=args.quota,
        checkpoint_every=args.checkpoint_every,
        chaos=args.chaos, store=store)

    def ready(port: int) -> None:
        where = "no persistent store" if store is None \
            else f"store {store.root}"
        print(f"serve: listening on http://{args.host}:{port} -- "
              f"{args.jobs} workers, lease ttl {args.lease_ttl:.0f}s, "
              f"{where}", file=sys.stderr)

    # A server launched as a shell background job inherits SIGINT
    # ignored (POSIX job control); restore it so `kill -INT` still
    # triggers the drain-and-exit-130 path.
    import signal

    signal.signal(signal.SIGINT, signal.default_int_handler)
    try:
        server.run(host=args.host, port=args.port, ready=ready)
    except KeyboardInterrupt:
        drained = server.shutdown()
        print(f"serve: interrupted; drained {len(drained)} unfinished "
              "job(s), workers stopped", file=sys.stderr)
        return 130
    server.shutdown()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the full ``repro`` argparse tree (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiscalar Processors (ISCA 1995) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_flags(p, with_units=True):
        if with_units:
            p.add_argument("--units", type=int, default=1,
                           help="processing units (>1 implies multiscalar)")
        p.add_argument("--issue", type=int, default=1, choices=(1, 2))
        p.add_argument("--ooo", action="store_true",
                       help="out-of-order issue")
        p.add_argument("--multiscalar", action="store_true",
                       help="force multiscalar annotation even at 1 unit")
        p.add_argument("--entries", type=lambda s: s.split(","),
                       default=[], help="extra task-entry labels")
        p.add_argument("--auto-loops", action="store_true",
                       help="make every loop header a task entry")
        p.add_argument("--no-fast-path", action="store_true",
                       help="force the reference per-cycle simulator "
                            "(results are identical, just slower)")
        p.add_argument("--no-jit", action="store_true",
                       help="disable the trace-JIT and run the fast-path "
                            "interpreter (results are identical)")

    run = sub.add_parser("run", help="run a .mc or .s program")
    run.add_argument("file")
    add_machine_flags(run)
    run.add_argument("--timeline", action="store_true",
                     help="print the per-unit task timeline")
    run.add_argument("--stats", action="store_true",
                     help="print the cycle-distribution taxonomy")
    run.add_argument("--max-cycles", type=int, default=20_000_000)
    run.set_defaults(fn=cmd_run)

    comp = sub.add_parser("compile", help="compile MinC to assembly")
    comp.add_argument("file")
    comp.add_argument("-o", "--output")
    comp.set_defaults(fn=cmd_compile)

    dis = sub.add_parser("disasm", help="print an annotated listing")
    dis.add_argument("file")
    add_machine_flags(dis, with_units=False)
    dis.set_defaults(fn=cmd_disasm)

    wl = sub.add_parser("workloads", help="list or run benchmark kernels")
    wl.add_argument("--run", help="workload name to run")
    wl.add_argument("--units", type=int, default=8)
    wl.set_defaults(fn=cmd_workloads)

    def add_cache_flags(p):
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent result store "
                            "(force fresh simulations)")
        p.add_argument("--purge-cache", action="store_true",
                       help="purge the persistent result store first")
        p.add_argument("--cache-dir", default=None,
                       help="result-store directory "
                            "(default .repro-cache or $REPRO_CACHE_DIR)")

    tables = sub.add_parser("tables", help="regenerate a paper table")
    tables.add_argument("number", type=int, choices=(1, 2, 3, 4))
    tables.add_argument("--names", type=lambda s: s.split(","),
                        default=None, help="restrict to these workloads")
    add_cache_flags(tables)
    tables.set_defaults(fn=cmd_tables)

    report = sub.add_parser(
        "report", help="run the whole evaluation, write a report")
    report.add_argument("-o", "--output", default=None)
    report.add_argument("--quick", action="store_true",
                        help="three representative workloads only")
    add_cache_flags(report)
    report.set_defaults(fn=cmd_report)

    sweep = sub.add_parser(
        "sweep", help="run a workload x config grid through the sharded "
                      "job engine with persistent caching")
    sweep.add_argument("--workloads", type=lambda s: s.split(","),
                       default=None,
                       help="comma-separated workloads (default: all)")
    sweep.add_argument("--units", type=lambda s: [int(u) for u in
                                                  s.split(",")],
                       default=[4, 8],
                       help="multiscalar unit counts (default 4,8)")
    sweep.add_argument("--widths", type=lambda s: [int(w) for w in
                                                   s.split(",")],
                       default=[1], help="issue widths (default 1)")
    sweep.add_argument("--ooo", choices=("io", "ooo", "both"),
                       default="io", help="issue orders to sweep")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial in-process)")
    sweep.add_argument("--timeout", type=float, default=600.0,
                       help="per-job wall-clock budget in seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retry budget per job for crashes/timeouts")
    sweep.add_argument("--max-cycles", type=int, default=20_000_000)
    sweep.add_argument("--timeline", action="store_true",
                       help="render per-unit task timelines afterwards")
    sweep.add_argument("--require-hit-rate", type=float, default=None,
                       metavar="FRACTION",
                       help="exit 1 unless the persistent-cache hit rate "
                            "is at least this fraction (e.g. 0.9)")
    sweep.add_argument("--self-test", action="store_true",
                       help="SIGKILL a worker mid-job and require the "
                            "grid to complete via retry")
    sweep.add_argument("--metrics", action="store_true",
                       help="print the metrics registry aggregated "
                            "across every grid cell (cached and fresh)")
    sweep.add_argument("--no-fast-path", action="store_true",
                       help="run the reference per-cycle simulator "
                            "(cached separately from fast-path results)")
    sweep.add_argument("--no-jit", action="store_true",
                       help="disable the trace-JIT (cached separately "
                            "from jit results)")
    sweep.add_argument("--server", default=None, metavar="URL",
                       help="run as a thin client of a `repro serve` "
                            "instance instead of a local worker pool "
                            "(e.g. http://127.0.0.1:8642)")
    add_cache_flags(sweep)
    sweep.set_defaults(fn=cmd_sweep)

    explore = sub.add_parser(
        "explore", help="design-space autopilot: search hardware axes + "
                        "compiler knobs, report Pareto frontiers")
    explore.add_argument("target", nargs="?", default="all",
                         help="comma-separated workloads, or 'all'")
    explore.add_argument("--budget", type=int, default=40,
                         help="design points evaluated per workload "
                              "(default 40)")
    explore.add_argument("--seed", type=int, default=0,
                         help="search RNG seed; same seed + budget = "
                              "byte-identical report")
    explore.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial in-process)")
    explore.add_argument("--timeout", type=float, default=600.0,
                         help="per-job wall-clock budget in seconds")
    explore.add_argument("--retries", type=int, default=2,
                         help="retry budget per job for crashes/timeouts")
    explore.add_argument("--max-cycles", type=int, default=20_000_000)
    explore.add_argument("--out", default=None, metavar="DIR",
                         help="write explore.json + explore.md reports "
                              "under this directory")
    explore.add_argument("--require-hit-rate", type=float, default=None,
                         metavar="FRACTION",
                         help="exit 1 unless the cache hit rate is at "
                              "least this fraction (e.g. 0.9)")
    explore.add_argument("--self-test", action="store_true",
                         help="run a tiny search twice against a private "
                              "store; require byte-identical reports and "
                              "a fully-cached second run")
    explore.add_argument("--server", default=None, metavar="URL",
                         help="evaluate points as a thin client of a "
                              "`repro serve` instance instead of a local "
                              "worker pool")
    add_cache_flags(explore)
    explore.set_defaults(fn=cmd_explore)

    bench = sub.add_parser(
        "bench", help="measure simulator throughput and gate against "
                      "the committed baseline")
    bench.add_argument("--quick", action="store_true",
                       help="small representative subset (CI perf smoke)")
    bench.add_argument("-o", "--output", default="BENCH_simulator.json",
                       help="where to write the measurements "
                            "(default BENCH_simulator.json)")
    bench.add_argument("--baseline",
                       default="benchmarks/bench_baseline.json",
                       help="committed baseline to compare against")
    bench.add_argument("--check", action="store_true",
                       help="exit 1 on a calibrated throughput "
                            "regression beyond --max-regression")
    bench.add_argument("--max-regression", type=float, default=0.30,
                       metavar="FRACTION",
                       help="tolerated total-throughput regression "
                            "(default 0.30)")
    bench.add_argument("--max-trace-overhead", type=float, default=0.02,
                       metavar="FRACTION",
                       help="tolerated tracing-disabled overhead under "
                            "--check (default 0.02)")
    bench.add_argument("--no-fast-path", action="store_true",
                       help="benchmark the reference per-cycle path")
    bench.add_argument("--no-jit", action="store_true",
                       help="benchmark the fast-path interpreter "
                            "without the trace-JIT")
    bench.add_argument("--no-profile", action="store_true",
                       help="skip the cProfile pass")
    bench.set_defaults(fn=cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="fault-injection harness: kill workers, corrupt "
                      "checkpoints and caches, plant a livelock, and "
                      "require bit-identical results")
    chaos.add_argument("--self-test", action="store_true",
                       help="one-workload quick configuration")
    chaos.add_argument("--workloads", type=lambda s: s.split(","),
                       default=["wc", "cmp"],
                       help="workloads to sweep under sabotage")
    chaos.add_argument("--units", type=lambda s: [int(u) for u in
                                                  s.split(",")],
                       default=[2],
                       help="multiscalar unit counts (default 2)")
    chaos.add_argument("--jobs", type=int, default=2,
                       help="worker processes for the sabotaged sweep")
    chaos.add_argument("--checkpoint-every", type=int, default=2_000,
                       help="cycles between checkpoints (small, so the "
                            "kill-after-checkpoint fault resumes mid-run)")
    chaos.set_defaults(fn=cmd_chaos)

    trace = sub.add_parser(
        "trace", help="run one workload/program with structured event "
                      "tracing; export a Perfetto/Chrome trace and a "
                      "cycle-attribution flamegraph")
    trace.add_argument("target",
                       help="a workload name (see `repro workloads`) or "
                            "a .mc/.s program file")
    trace.add_argument("--units", type=int, default=4,
                       help="processing units (>1 implies multiscalar; "
                            "default 4)")
    add_machine_flags(trace, with_units=False)
    trace.add_argument("--categories", default="all",
                       help="comma-separated event categories to record "
                            "(task,pipe,ring,arb,mem,seq,predict; "
                            "default all)")
    trace.add_argument("--window", default=None, metavar="START:END",
                       help="record only events with START <= cycle < "
                            "END (either bound may be empty)")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event JSON output path "
                            "(default trace.json)")
    trace.add_argument("--metrics", action="store_true",
                       help="print the full metrics registry afterwards")
    trace.add_argument("--max-cycles", type=int, default=20_000_000)
    trace.set_defaults(fn=cmd_trace)

    cache = sub.add_parser(
        "cache", help="inspect or purge the persistent result store")
    cache.add_argument("--purge", action="store_true",
                       help="delete every stored result")
    cache.add_argument("--stats", action="store_true",
                       help="print entry count, bytes on disk, and the "
                            "lifetime hit/miss/write tallies")
    cache.add_argument("--cache-dir", default=None,
                       help="result-store directory")
    cache.set_defaults(fn=cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the simulation job server: an HTTP API over "
                      "a persistent leased worker daemon sharing the "
                      "result store")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (default 8642; 0 = ephemeral)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="persistent worker processes (default 2)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds before an unheartbeated lease "
                            "expires and its job is re-queued")
    serve.add_argument("--timeout", type=float, default=600.0,
                       help="per-attempt wall-clock budget in seconds")
    serve.add_argument("--retries", type=int, default=2,
                       help="re-queue budget per job for worker deaths "
                            "and timeouts")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="pending-queue depth before submissions "
                            "get 429 + Retry-After")
    serve.add_argument("--quota", type=int, default=None,
                       help="max in-flight jobs per client id "
                            "(default unlimited)")
    serve.add_argument("--checkpoint-every", type=int,
                       default=2_000_000,
                       help="simulated cycles between worker "
                            "checkpoints for sim jobs")
    serve.add_argument("--chaos", action="store_true",
                       help="accept fault-injection fields on "
                            "submissions (worker-kill drills)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the persistent result store "
                            "(results held in memory only)")
    serve.add_argument("--cache-dir", default=None,
                       help="result-store directory "
                            "(default .repro-cache or $REPRO_CACHE_DIR)")
    serve.set_defaults(fn=cmd_serve)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing across all backends")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (same seed, same programs)")
    fuzz.add_argument("--budget", type=int, default=100,
                      help="number of generated programs to run")
    fuzz.add_argument("--languages", type=lambda s: s.split(","),
                      default=["asm", "minic"],
                      help="program generators to use (asm,minic)")
    fuzz.add_argument("--units", type=lambda s: [int(u) for u in
                                                 s.split(",")],
                      default=[1, 2, 4, 8],
                      help="multiscalar unit counts to cover")
    fuzz.add_argument("--widths", type=lambda s: [int(w) for w in
                                                  s.split(",")],
                      default=[1, 2], help="issue widths to cover")
    fuzz.add_argument("--ooo", choices=("io", "ooo", "both"),
                      default="both", help="issue orders to cover")
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="shard program checks across this many "
                           "worker processes")
    fuzz.add_argument("--no-fast-path", action="store_true",
                      help="also rotate reference (per-cycle) simulator "
                           "configs into the oracle grid")
    fuzz.add_argument("--no-jit", action="store_true",
                      help="also rotate no-jit (fast-path interpreter) "
                           "configs into the oracle grid")
    fuzz.add_argument("--max-shrink-checks", type=int, default=400,
                      help="delta-debugging budget per divergence")
    fuzz.add_argument("--self-test", metavar="OP", default=None,
                      help="inject a semantics bug for this opcode into "
                           "the multiscalar backend (e.g. --self-test "
                           "xor), or a JIT guard miss (--self-test "
                           "jit-stop / jit-taken-branch), and require "
                           "the campaign to catch it")
    fuzz.add_argument("--server", default=None, metavar="URL",
                      help="ship program checks to a `repro serve` "
                           "instance instead of forking a local pool")
    fuzz.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` (default ``sys.argv[1:]``) and dispatch to the
    selected subcommand; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Commands with worker pools drain them internally; anything
        # that still reaches here just ends quietly, no traceback.
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
