"""compress stand-in: a hash-table recurrence loop.

Section 5.3: "In compress all time is spent in a single (big) loop ...
bound by a recurrence (getting the index into the hash table) that
results in a long critical path through the entire program. The problem
is further aggravated by the huge size of the hash table, which results
in a high rate of cache misses."

This kernel reproduces that shape: the hash index ``h`` is loop-carried
through a register (the ring forwards it, but successors stall on it —
the recurrence), and the table is twice the size of a data-cache bank.
Paper speedups: 1.0-1.6x — the weakest of the loop benchmarks.
"""

from repro.workloads.base import WorkloadSpec, lcg_ints, render_int_array

N = 360
TABLE_BITS = 12
TABLE_SIZE = 1 << TABLE_BITS

_INPUT = lcg_ints(0xC0DE, N, 251)


def _expected() -> str:
    table = [0] * TABLE_SIZE
    h = 0
    hits = 0
    code = 256
    for c in _INPUT:
        probe = ((h << 5) ^ (c * 77)) & (TABLE_SIZE - 1)
        e = table[probe]
        if e == c + 1:
            hits += 1
            h = (h ^ probe) & (TABLE_SIZE - 1)
        else:
            table[probe] = c + 1
            code += 1
            h = (probe + e) & (TABLE_SIZE - 1)
    return f"{hits} {code} {h}"


# The next hash index depends on the *looked-up table entry*, so the
# loop-carried value h flows through a load each iteration — this is the
# "recurrence (getting the index into the hash table)" that puts a long
# critical path through the whole program.
_SOURCE = f"""
// compress-like: hash recurrence through a large table.
{render_int_array("input", _INPUT)}
int table[{TABLE_SIZE}];

void main() {{
    int h = 0;
    int hits = 0;
    int code = 256;
    int i = 0;
    parallel while (i < {N}) {{
        int c = input[i];
        i += 1;
        int probe = ((h << 5) ^ (c * 77)) & {TABLE_SIZE - 1};
        int e = table[probe];
        if (e == c + 1) {{
            hits += 1;
            h = (h ^ probe) & {TABLE_SIZE - 1};
        }} else {{
            table[probe] = c + 1;
            code += 1;
            h = (probe + e) & {TABLE_SIZE - 1};
        }}
    }}
    print_int(hits); print_char(' ');
    print_int(code); print_char(' ');
    print_int(h);
}}
"""

SPEC = WorkloadSpec(
    name="compress",
    paper_benchmark="compress (SPECint92)",
    description="Hash-index recurrence loop over a bank-busting table",
    source=_SOURCE,
    expected_output=_expected(),
    paper_notes=("Recurrence on the hash index serializes tasks; cache "
                 "misses from the big table. Paper speedups 1.04-1.56x."),
)
