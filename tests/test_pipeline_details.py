"""Focused pipeline tests: issue policies, flush paths, hazards."""

import pytest

from repro.config import scalar_config
from repro.core.scalar import ScalarProcessor
from repro.isa import FunctionalCPU, assemble


def run_cycles(source, width=1, ooo=False):
    program = assemble(source)
    processor = ScalarProcessor(program, scalar_config(width, ooo))
    result = processor.run()
    reference = FunctionalCPU(program)
    reference.run()
    assert processor.regs == reference.state.regs
    return result


def test_in_order_blocks_on_oldest():
    # Long divides amid independent adds, in a warm loop: in-order
    # serializes behind each divide, OOO slips past it.
    source = """
main:   li $t0, 90
        li $t1, 9
        li $s0, 0
loop:   div $t2, $t0, $t1
        add $t3, $t0, $t1
        add $t4, $t0, $t1
        add $t5, $t3, $t4
        add $t6, $t3, $t1
        add $s0, $s0, $t2
        addi $t1, $t1, 0
        addi $s1, $s1, 1
        blt $s1, 40, loop
        halt
    """
    inorder = run_cycles(source, ooo=False)
    ooo = run_cycles(source, ooo=True)
    assert ooo.cycles < inorder.cycles


def test_ooo_window_respects_dependences():
    # Chain through $t2: OOO must still serialize true dependences.
    source = """
main:   li $t0, 5
        div $t2, $t0, $t0
        mult $t2, $t2, $t0
        add $t2, $t2, $t0
        halt
    """
    result = run_cycles(source, ooo=True)
    # div(12) + mult(4) + add(1) dominate: can't finish absurdly fast.
    assert result.cycles >= 17


def test_waw_hazard_resolved_correctly():
    # Two writes to $t2 with different latencies: the younger write
    # (fast add) must architecturally win over the older slow divide.
    source = """
main:   li $t0, 84
        li $t1, 2
        div $t2, $t0, $t1
        add $t2, $t0, $t1
        halt
    """
    for ooo in (False, True):
        result = run_cycles(source, ooo=ooo)  # asserts regs vs functional
        del result


def test_war_hazard_resolved_correctly():
    # Read of $t1 must see the OLD value despite the later write.
    source = """
main:   li $t1, 7
        li $t0, 3
        add $t2, $t1, $t0
        li $t1, 100
        halt
    """
    for width, ooo in ((1, True), (2, True), (2, False)):
        run_cycles(source, width, ooo)


def test_load_waits_for_older_store_same_address():
    source = """
        .data
cell:   .word 1
        .text
main:   la $t0, cell
        li $t1, 99
        sw $t1, 0($t0)
        lw $t2, 0($t0)
        halt
    """
    for ooo in (False, True):
        run_cycles(source, ooo=ooo)


def test_branch_flush_discards_wrong_path_writes():
    # Wrong-path instructions after a taken branch must not commit.
    source = """
main:   li $t0, 1
        bne $t0, $zero, target
        li $t5, 666
        li $t6, 777
target: li $t7, 42
        halt
    """
    for ooo in (False, True):
        result = run_cycles(source, ooo=ooo)
        del result


def test_jr_stalls_fetch_until_resolved():
    source = """
main:   la $t0, next
        jr $t0
        li $t5, 666
next:   li $t6, 1
        halt
    """
    run_cycles(source)


def test_two_way_dispatch_and_issue():
    source = "\n".join(
        ["main: li $t0, 1", " li $t1, 2"]
        + [" add $t2, $t0, $t1", " add $t3, $t1, $t0"] * 20
        + [" halt"])
    one = run_cycles(source, width=1)
    two = run_cycles(source, width=2)
    assert two.cycles <= one.cycles


def test_fp_latency_pipelining():
    # Independent DP multiplies (latency 5) pipeline through the FP unit.
    source = """
        .data
v:      .double 1.5
        .text
main:   l.d $f0, v
        mul.d $f2, $f0, $f0
        mul.d $f4, $f0, $f0
        mul.d $f6, $f0, $f0
        mul.d $f8, $f0, $f0
        halt
    """
    result = run_cycles(source, ooo=True)
    # Pipelined: the 4 multiplies overlap in the FP unit (~5+3 cycles
    # instead of 20); the budget covers the cold icache/dcache misses.
    assert result.cycles <= 45


def test_syscall_reads_committed_register_state():
    source = """
main:   li $a0, 1
        li $v0, 1
        addi $a0, $a0, 41
        syscall
        halt
    """
    program = assemble(source)
    processor = ScalarProcessor(program, scalar_config(2, True))
    result = processor.run()
    assert result.output == "42"


def test_fetch_queue_bounded():
    # A tight loop must not grow internal structures without bound.
    source = """
main:   li $t0, 2000
loop:   addi $t0, $t0, -1
        bne $t0, $zero, loop
        halt
    """
    program = assemble(source)
    processor = ScalarProcessor(program)
    result = processor.run()
    pipe = processor.pipeline
    assert len(pipe.fetch_buffer) <= pipe.config.fetch_queue
    assert len(pipe.rob) <= pipe.config.window_size
    assert result.instructions == 2 + 2 * 2000
