"""sc stand-in: work-list spreadsheet evaluation.

Section 5.3: "The body of the inner loop of RealEvalAll is a task with
the call to RealEvalOne suppressed manually ... Since RealEvalOne
executes for hundreds of cycles, the load imbalance between the work at
each cell is enormous. Accordingly, we restructured the RealEvalOne
loop to build a work list of the cells to be evaluated and to call
RealEvalOne for each of the cells on the work list."

We reproduce the restructured version: a serial pass builds the work
list of non-empty cells, then a parallel loop evaluates one cell per
task through a suppressed call of data-dependent duration. Paper
speedups: 1.2-1.8x.
"""

from repro.workloads.base import WorkloadSpec, lcg_ints, render_int_array

CELLS = 96
FILL_MOD = 3    # about a third of the cells are non-empty

_RAW = lcg_ints(0x5C5C, CELLS, 90)
_GRID = [v if v % FILL_MOD == 0 and v > 0 else 0 for v in _RAW]


_recalcs = 0


def _eval_one(seed: int) -> int:
    global _recalcs
    if seed & 3 == 0:
        _recalcs += 1
    value = seed
    acc = 0
    for _ in range(4 + seed % 13):
        value = (value * 17 + 9) % 1009
        acc += value
    return acc


def _expected() -> str:
    global _recalcs
    _recalcs = 0
    total = 0
    evaluated = 0
    for cell in _GRID:
        if cell != 0:
            total += _eval_one(cell)
            evaluated += 1
    return f"{evaluated} {total} {_recalcs}"


_SOURCE = f"""
// sc-like: RealEvalAll over a work list of non-empty cells.
{render_int_array("grid", _GRID)}
int worklist[{CELLS}];
int results[{CELLS}];
int recalcs = 0;

int eval_one(int seed) {{
    // Some evaluations touch shared bookkeeping (read early, updated
    // late) -- the global-scalar squash pattern of Section 3.1.1.
    int r0 = 0;
    if ((seed & 3) == 0) {{ r0 = recalcs; }}
    int value = seed;
    int acc = 0;
    int steps = 4 + seed % 13;
    for (int s = 0; s < steps; s += 1) {{
        value = (value * 17 + 9) % 1009;
        acc += value;
    }}
    if ((seed & 3) == 0) {{ recalcs = r0 + 1; }}
    return acc;
}}

void main() {{
    // Build the work list (a serial task, as in the restructured sc).
    int nw = 0;
    for (int c = 0; c < {CELLS}; c += 1) {{
        if (grid[c] != 0) {{
            worklist[nw] = c;
            nw += 1;
        }}
    }}
    int w = 0;
    parallel while (w < nw) {{
        int ww = w;
        w += 1;
        int cell = worklist[ww];
        results[ww] = eval_one(grid[cell]);   // suppressed call
    }}
    int total = 0;
    for (int k = 0; k < nw; k += 1) {{ total += results[k]; }}
    print_int(nw); print_char(' '); print_int(total);
    print_char(' '); print_int(recalcs);
}}
"""

SPEC = WorkloadSpec(
    name="sc",
    paper_benchmark="sc (SPECint92)",
    description="Work-list cell evaluation through suppressed calls",
    source=_SOURCE,
    expected_output=_expected(),
    paper_notes=("Work-list restructuring fixes the empty-cell load "
                 "imbalance; paper speedups 1.24-1.75x."),
)
