"""The processing-unit pipeline shared by all timing models.

One :class:`~repro.pipeline.unit.UnitPipeline` implements the paper's
5-stage (IF/ID/EX/MEM/WB) processing unit, configurable for in-order or
out-of-order issue at 1-way or 2-way width, with out-of-order completion
on pipelined functional units. The scalar baseline is a single pipeline
with a plain register file; each multiscalar processing unit is the same
pipeline wired to a ring-connected register file and the ARB through a
:class:`~repro.pipeline.context.PipelineContext`.
"""

from repro.pipeline.functional_units import FUPool
from repro.pipeline.context import PipelineContext, StallReason
from repro.pipeline.unit import UnitPipeline

__all__ = ["FUPool", "PipelineContext", "StallReason", "UnitPipeline"]
