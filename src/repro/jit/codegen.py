"""Source generation for the compiled trace executors.

A generated executor runs whole machine cycles inside a single Python
frame, against the units' real state objects (the same ROB lists,
``_InFlight`` records, FU port lists, and caches the interpreter
uses). It is a specialized, flattened transcription of
``UnitPipeline.step()`` — same phase order (commit, resolve, issue,
dispatch, fetch, stall classification, activity), same side effects,
driven by the flat per-word tables of :mod:`repro.jit.blocks` instead
of per-uop attribute chains.

Two executor shapes share one phase transcription:

* the **unit window** (:func:`build_source`) advances ONE unit for
  many cycles — the scalar run loop, and the multiscalar steady state
  where every other unit sleeps past the window end;
* the **machine frame** (:func:`build_machine_source`) transcribes the
  multiscalar machine loop itself — ring delivery, the task walk,
  idle accounting, retirement, and the machine-level quiescence skip —
  advancing every unit cycle-by-cycle in walk order inside one frame.
  Units whose in-flight state is *regular* (every ROB word COMMIT_OK,
  the next dispatch admitted) run the compiled phase transcription
  against per-unit state slots; irregular units fall back to
  ``pipeline.step()`` per cycle, so forwards, releases, stops,
  syscalls, and squashes execute through the interpreter while their
  neighbours stay compiled. Interleaving in walk order keeps the ARB
  access order — and therefore memory-violation detection — identical
  to the interpreter.

Correctness rests on two structural invariants rather than per-effect
guards:

* **All-or-nothing cycles.** A unit-window deopt guard (the next word
  the unit would dispatch, checked against the body's dispatch table)
  is evaluated *before* any of a cycle's effects, so a guarded exit
  returns with the flagged cycle completely unexecuted and the
  interpreter simply runs that exact cycle — there is no
  partial-cycle state to repair. In the machine frame the same check
  demotes just that unit to its interpreter for the cycle; the only
  whole-frame exits are the sequencer becoming ready to assign
  (checked before any of the cycle's effects) and the machine halting
  (checked after the cycle completes, which is when the run loop
  would see it).
* **No annotations in compiled state.** Compiled phases only ever run
  over ROBs whose every record decodes to a COMMIT_OK word (plain
  commits: no syscalls, halts, forwards, releases, or stop bits), and
  the dispatch table admits only such words. Compiled control flow is
  therefore *regular*: branch resolution is either a no-op or the
  plain mispredict flush, jumps redirect fetch, and jr/jalr stall it —
  all transcribed here — while every annotated form (task stops,
  forwards, releases) and syscall/halt runs interpreted. In the
  machine frame, machine-level events those commits raise — ring
  sends, squash requests, mispredict squashes, retirement — happen
  through the interpreter's own methods on the live machine object,
  at exactly the walk position the machine loop would run them.

Unit-window executors are specialized per machine variant (scalar vs
multiscalar annotation suppression), per feature set of the live
window (memory ops present, control flow present), and on whether an
event bus is attached — a handful of compiled bodies per engine,
cached by key. A body's dispatch table maps any word whose features it
did not compile to an ``EV_TRACE`` deopt, so a window that branches
into a region needing richer arms exits cleanly and re-enters under
the right variant. Machine-frame bodies always compile the full
feature set (several units rarely share a feature profile) and so
specialize only on tracing.
"""

from __future__ import annotations

from repro.isa.executor import next_pc as _arch_next_pc
from repro.isa.memory_image import u32 as _u32
from repro.jit.blocks import (
    K_ALU,
    K_BRANCH,
    K_CALL,
    K_JUMP,
    K_JUMP_REG,
    K_LOAD,
    K_STORE,
)
from repro.observability.events import Category as _Cat
from repro.pipeline.context import StallReason
from repro.pipeline.unit import MemRetry as _MemRetry
from repro.pipeline.unit import _InFlight

#: Body-feature bits. F_MEM / F_BRANCH prune the issue arms and the
#: memory / control-flow machinery for windows that provably contain
#: no memory ops / no control flow; F_TRACED compiles in the
#: stall-transition event emission.
F_MEM = 1
F_BRANCH = 2
F_TRACED = 4

_CAT_PIPE = int(_Cat.PIPE)

#: StallReason members and names indexed by their IntEnum value (the
#: executor tracks the current stall id as a small int).
_RS_ENUM = (None,) + tuple(StallReason)
_RS_NAME = (None,) + tuple(reason.name for reason in StallReason)

_R_NONE = int(StallReason.NONE)
_R_INTER = int(StallReason.INTER_TASK)
_R_INTRA = int(StallReason.INTRA_TASK)
_R_WAIT = int(StallReason.WAIT_RETIRE)
_R_FETCH = int(StallReason.FETCH)

#: Shared sources dict for uops with no register producers: their bound
#: closures never index it (LUI/LI/LA ignore the argument), and gathered
#: source dicts are never mutated after issue, so sharing is safe.
_EMPTY_SRCS: dict = {}


class _Lines:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.parts: list[str] = []
        self.depth = 0

    def w(self, text: str = "") -> None:
        self.parts.append("    " * self.depth + text if text else "")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1

    def source(self) -> str:
        return "\n".join(self.parts) + "\n"


def _emit_tables(L: _Lines) -> None:
    """Bind every flat table as a closure cell of the factory.

    LOAD_DEREF beats LOAD_GLOBAL and attribute chains in the per-cycle
    loop.
    """
    w = L.w
    w("KIND = T.kind; LAT = T.lat; FUI = T.fui")
    w("SRCS = T.srcs; DSTS = T.dsts; DST1 = T.dst1")
    w("IMM = T.imm; TGT = T.target; ALUF = T.alu; BRF = T.branch")
    w("EA = T.ea_base; SREG = T.store_reg; INSTR = T.instrs")
    w("UOPS = T.uops; ISREL = T.is_release; ISJAL = T.is_jal")
    w("BLOCK_OF = T.block_of; BENT = T.block_entries")
    w("TB = T.text_base; NW = T.nwords")
    w("IFNEW = _InFlight.__new__")


def _emit_phases(L: _Lines, ms: bool, mem: bool, br: bool, traced: bool,
                 inject_taken: bool,
                 stall_line: str = "counts[rid] += 1") -> None:
    """Emit one unit-cycle of phases (commit through activity).

    The emitted block reads and writes ONLY local names — the callers
    bind them from a pipeline (unit window) or from per-unit state
    slots (machine frame) before the block runs, and store the
    mutated scalars back after it. ``stall_line`` is the statement
    charging a non-issue cycle's stall reason (the unit window defers
    into a counts buffer; the machine frame charges the task's
    stall-cycle dict eagerly):

    in/out scalars   pc fpu fpp pstores unissued didx lsid cur_bid
                     busy last_issue committed_t dispatched_t fetched_t
                     loads_t stores_t
    out scalars      issued rid act (plus scratch)
    aliased state    rob fb lw unres fbv stats counts regs pending
    bound callables  fetch_group mem_load mem_store store_prep
    constants        window fetchq stopc cycle trace tid
    """
    w = L.w

    # ------------------------------------------------------------ commit
    w("# Commit (unguarded: COMMIT_OK entry scan + DISPATCH_OK-only")
    w("# dispatch means only regular commits can reach the head).")
    w("committed = 0")
    w("while rob:")
    L.indent()
    w("r0 = rob[0]")
    w("if not r0.issued or cycle < r0.done_cycle or not r0.resolved:")
    L.indent()
    w("break")
    L.dedent()
    w("rob.pop(0)")
    w("committed += 1")
    w("w0 = (r0.pc - TB) >> 2")
    w("ds = DSTS[w0]")
    w("if ds:")
    L.indent()
    w("res = r0.result")
    w("if res is not None:")
    L.indent()
    w("d1 = DST1[w0]")
    w("if d1:")
    L.indent()
    w("regs[d1] = res")
    if ms:
        w("pending.pop(d1, None)")
    L.dedent()
    L.dedent()
    w("for d in ds:")
    L.indent()
    w("if lw.get(d) is r0:")
    L.indent()
    w("del lw[d]")
    L.dedent()
    L.dedent()
    L.dedent()
    if mem:
        w(f"if KIND[w0] == {K_STORE}:")
        L.indent()
        w("mem_store(INSTR[w0], r0.ea, r0.store_value, cycle)")
        w("pstores -= 1")
        w("stores_t += 1")
        L.dedent()
    L.dedent()
    w("committed_t += committed")

    # ----------------------------------------------------------- resolve
    if br:
        w("# Resolve ready control (exact _resolve_branches +")
        w("# _apply_resolution for unannotated records: a not-taken")
        w("# branch is a no-op, a taken branch is the mispredict flush,")
        w("# and jr/jalr always flush-and-redirect to the target).")
        w("resolved = 0")
        w("if unres:")
        L.indent()
        w("while True:")
        L.indent()
        w("cand = None")
        w("for r in unres:")
        L.indent()
        w("if r.issued and cycle >= r.done_cycle:")
        L.indent()
        w("cand = r")
        w("break")
        L.dedent()
        L.dedent()
        w("if cand is None:")
        L.indent()
        w("break")
        L.dedent()
        w("unres.remove(cand)")
        w("cand.resolved = True")
        w("resolved += 1")
        w("cut = -1")
        w(f"if KIND[(cand.pc - TB) >> 2] == {K_BRANCH}:")
        L.indent()
        if inject_taken:
            # Planted guard miss (difftest.inject_jit_guard_miss): taken
            # branches resolve as no-ops, silently running the wrong path.
            w("if 0:")
        else:
            w("if cand.taken:")
        L.indent()
        w("stats.taken_branch_flushes += 1")
        w("cut = cand.idx")
        L.dedent()
        L.dedent()
        w("else:  # jr / jalr (stop bits never reach a window)")
        L.indent()
        w("cut = cand.idx")
        L.dedent()
        w("if cut >= 0:")
        L.indent()
        w("keep = [r for r in rob if r.idx <= cut]")
        w("dropped = len(rob) - len(keep)")
        w("if dropped:")
        L.indent()
        w("stats.flushed += dropped")
        w("rob[:] = keep  # in place: body-local aliases must survive")
        w("unres[:] = [r for r in unres if r.idx <= cut]")
        if mem:
            w("pstores = 0")
        w("unissued = 0")
        w("lw.clear()")
        w("for r in keep:")
        L.indent()
        w("wk = (r.pc - TB) >> 2")
        if mem:
            w(f"if KIND[wk] == {K_STORE}:")
            L.indent()
            w("pstores += 1")
            L.dedent()
        w("if not r.issued:")
        L.indent()
        w("unissued += 1")
        L.dedent()
        w("for d in DSTS[wk]:")
        L.indent()
        w("lw[d] = r")
        L.dedent()
        L.dedent()
        L.dedent()
        w("fb.clear()")
        w("fpu = None")
        w("fpp = None")
        w("pc = cand.next_pc")
        L.dedent()
        L.dedent()
        L.dedent()
    else:
        w("resolved = 0")

    # ------------------------------------------------------------- issue
    w("# Issue (in-order, width 1): exact _try_issue transcription.")
    w("issued = 0")
    w("if unissued:")
    L.indent()
    w("rec = rob[-unissued]")
    w("if cycle >= rec.issuable_at:")
    L.indent()
    w("prod = rec.producers")
    w("ok = True")
    w("if prod:")
    L.indent()
    w("srcs = {}")
    w("for reg, pr in prod.items():")
    L.indent()
    w("if pr is None:")
    L.indent()
    if ms:
        w("if reg in pending:")
        L.indent()
        w("ok = False")
        w("break")
        L.dedent()
    w("srcs[reg] = regs[reg]")
    L.dedent()
    w("elif pr.issued and cycle >= pr.done_cycle:")
    L.indent()
    w("srcs[reg] = pr.result")
    L.dedent()
    w("else:")
    L.indent()
    w("ok = False")
    w("break")
    L.dedent()
    L.dedent()
    L.dedent()
    w("else:")
    L.indent()
    w("srcs = EMPTY")
    L.dedent()
    w("if ok:")
    L.indent()
    w("wq = (rec.pc - TB) >> 2")
    w("k = KIND[wq]")
    w("fail = False")
    if mem:
        # Load-ordering constraints (exact _older_unresolved_branch /
        # _older_uncommitted_store transcription).
        w(f"if k == {K_LOAD}:")
        L.indent()
        w("ri = rec.idx")
        w("for b in unres:")
        L.indent()
        w("if b.idx < ri:")
        L.indent()
        w("fail = True")
        w("break")
        L.dedent()
        L.dedent()
        w("if not fail and pstores:")
        L.indent()
        w("for o in rob:")
        L.indent()
        w("if o.idx >= ri:")
        L.indent()
        w("break")
        L.dedent()
        w(f"if KIND[(o.pc - TB) >> 2] == {K_STORE}:")
        L.indent()
        w("fail = True")
        w("break")
        L.dedent()
        L.dedent()
        L.dedent()
        L.dedent()
    w("if not fail:")
    L.indent()
    w("slots = fbv[FUI[wq]]")
    w("if slots[0] > cycle:")
    L.indent()
    w("fail = True  # single FU instance per class (Table 1)")
    L.dedent()
    w("else:")
    L.indent()
    w("done = cycle + LAT[wq]")
    w(f"if k == {K_ALU}:")
    L.indent()
    w("fn = ALUF[wq]")
    w("if fn is not None:")
    L.indent()
    w("rec.result = fn(srcs)")
    L.dedent()
    L.dedent()
    if mem:
        w(f"elif k == {K_LOAD}:")
        L.indent()
        w("rec.ea = ea = u32(srcs[EA[wq]] + IMM[wq])")
        if ms:
            w("try:")
            L.indent()
            w("v, done = mem_load(INSTR[wq], ea, cycle + 1)")
            L.dedent()
            w("except MemRetry:")
            L.indent()
            w("fail = True")
            L.dedent()
            w("else:")
            L.indent()
            w("rec.result = v")
            w("loads_t += 1")
            L.dedent()
        else:
            w("v, done = mem_load(INSTR[wq], ea, cycle + 1)")
            w("rec.result = v")
            w("loads_t += 1")
        L.dedent()
        w(f"elif k == {K_STORE}:")
        L.indent()
        w("rec.ea = ea = u32(srcs[EA[wq]] + IMM[wq])")
        if ms:
            w("try:")
            L.indent()
            w("store_prep(INSTR[wq], ea)")
            L.dedent()
            w("except MemRetry:")
            L.indent()
            w("fail = True")
            L.dedent()
            w("else:")
            L.indent()
            w("rec.store_value = srcs[SREG[wq]]")
            L.dedent()
        else:
            w("rec.store_value = srcs[SREG[wq]]")
        L.dedent()
    if br:
        w(f"elif k == {K_BRANCH}:")
        L.indent()
        w("t = BRF[wq](srcs)")
        w("rec.taken = t")
        w("rec.next_pc = TGT[wq] if t else rec.pc + 4")
        L.dedent()
    # Jumps/calls/jr are COMMIT_OK (their commits are regular) and may
    # sit in the ROB at window entry, so their issue arms are always
    # compiled even though the JIT never dispatches them.
    w(f"elif k == {K_JUMP} or k == {K_CALL} or k == {K_JUMP_REG}:")
    L.indent()
    w("rec.next_pc = arch_next_pc(INSTR[wq], srcs, rec.pc)")
    w(f"if k == {K_CALL}:")
    L.indent()
    w("rec.result = u32(rec.pc + 4)")
    L.dedent()
    L.dedent()
    w("# SYSCALL / HALT / RELEASE carry no EX-stage result.")
    w("if not fail:")
    L.indent()
    w("slots[0] = cycle + 1")
    w("rec.issued = True")
    w("rec.done_cycle = done")
    w("issued = 1")
    w("unissued -= 1")
    w("busy += 1")
    w("last_issue = cycle")
    L.dedent()
    L.dedent()
    L.dedent()
    L.dedent()
    L.dedent()
    L.dedent()

    # ---------------------------------------------------------- dispatch
    w("# Dispatch (width 1): the head word is DISPATCH_OK by guard.")
    w("dispatched = 0")
    w("if fb and len(rob) < window:")
    L.indent()
    w("uop, dpc = fb.popleft()")
    w("wd = (dpc - TB) >> 2")
    w("# Inlined _InFlight construction (one record per dispatched")
    w("# instruction): __new__ plus direct slot stores skips the")
    w("# __init__ call frame. Every slot is written — snapshot and")
    w("# interpreter code read them all after a demotion.")
    w("rec = IFNEW(_InFlight)")
    w("rec.uop = uop")
    w("rec.pc = dpc")
    w("rec.idx = didx")
    w("rec.issuable_at = cycle + 1")
    w("rec.issued = False")
    w("rec.done_cycle = 0")
    w("rec.result = None")
    w("rec.ea = 0")
    w("rec.store_value = None")
    w("rec.taken = False")
    w("rec.resolved = True")
    w("rec.stalled_fetch = False")
    w("rec.next_pc = dpc + 4")
    w("didx += 1")
    w("st = SRCS[wd]")
    w("prod = {}")
    w("rec.producers = prod")
    w("if st and not ISREL[wd]:")
    L.indent()
    w("for reg in st:")
    L.indent()
    w("prod[reg] = lw.get(reg)")
    L.dedent()
    L.dedent()
    w("for dst in DSTS[wd]:")
    L.indent()
    w("lw[dst] = rec")
    L.dedent()
    if mem:
        w(f"if KIND[wd] == {K_STORE}:")
        L.indent()
        w("pstores += 1")
        L.dedent()
    w("rob.append(rec)")
    w("dispatched = 1")
    w("unissued += 1")
    if br:
        w("# Decode-time fetch redirection (exact _dispatch_control")
        w("# with stop = NONE: the dispatch table admits no annotated")
        w("# control words).")
        w("kd = KIND[wd]")
        w(f"if kd == {K_BRANCH}:")
        L.indent()
        w("rec.resolved = False")
        w("unres.append(rec)")
        L.dedent()
        w(f"elif kd == {K_JUMP}:")
        L.indent()
        w("pc = TGT[wd]")
        w("fb.clear()")
        w("fpu = None")
        w("fpp = None")
        L.dedent()
        w(f"elif kd == {K_CALL}:")
        L.indent()
        w("if ISJAL[wd]:")
        L.indent()
        w("pc = TGT[wd]")
        w("fb.clear()")
        w("fpu = None")
        w("fpp = None")
        L.dedent()
        w("else:  # jalr: resolve-time redirect, fetch stalls")
        L.indent()
        w("rec.resolved = False")
        w("rec.stalled_fetch = True")
        w("unres.append(rec)")
        w("pc = None")
        w("fb.clear()")
        w("fpu = None")
        w("fpp = None")
        L.dedent()
        L.dedent()
        w(f"elif kd == {K_JUMP_REG}:")
        L.indent()
        w("rec.resolved = False")
        w("rec.stalled_fetch = True")
        w("unres.append(rec)")
        w("pc = None")
        w("fb.clear()")
        w("fpu = None")
        w("fpp = None")
        L.dedent()
    w("bid = BLOCK_OF[wd]")
    w("if bid != cur_bid:")
    L.indent()
    w("BENT[bid] += 1")
    w("cur_bid = bid")
    L.dedent()
    w("dispatched_t += 1")
    L.dedent()

    # ------------------------------------------------------------- fetch
    w("# Fetch: deliver a due group and/or start the next request.")
    w("fpu_b = fpu")
    w("if fpu is not None:")
    L.indent()
    w("if cycle >= fpu:")
    L.indent()
    w("start_pc = fpp")
    w("fpu = None")
    w("fpp = None")
    w("if start_pc is not None and start_pc == pc:")
    L.indent()
    w("cnt = ((start_pc & ~15) + 16 - start_pc) >> 2")
    w("ws = (start_pc - TB) >> 2")
    w("we = ws + cnt")
    w("if we > NW:")
    L.indent()
    w("we = NW")
    L.dedent()
    w("npc = start_pc")
    w("got = 0")
    w("if ws < we:")
    L.indent()
    w("for fu in UOPS[ws:we]:")
    L.indent()
    w("fb.append((fu, npc))")
    w("npc += 4")
    L.dedent()
    w("got = we - ws")
    L.dedent()
    w("fetched_t += got")
    w("pc = npc if got == cnt else None")
    L.dedent()
    w("if pc is not None and len(fb) < fetchq:")
    L.indent()
    w("fpp = pc")
    w("fpu = fetch_group(pc & ~15, cycle)")
    L.dedent()
    L.dedent()
    L.dedent()
    w("elif pc is not None and len(fb) < fetchq:")
    L.indent()
    w("fpp = pc")
    w("fpu = fetch_group(pc & ~15, cycle)")
    L.dedent()

    # ------------------------------------- stall classification and tail
    w("# Stall classification and transition (exact _classify_stall).")
    w("if issued:")
    L.indent()
    w(f"rid = {_R_NONE}")
    L.dedent()
    w("elif unissued:")
    L.indent()
    if ms:
        w(f"rid = {_R_INTRA}")
        w("for reg, pr in rob[-unissued].producers.items():")
        L.indent()
        w("if pr is None and reg in pending:")
        L.indent()
        w(f"rid = {_R_INTER}")
        w("break")
        L.dedent()
        L.dedent()
    else:
        w(f"rid = {_R_INTRA}")
    L.dedent()
    w("elif rob:")
    L.indent()
    w(f"rid = {_R_INTRA}  # a syscall head cannot occur in-window")
    L.dedent()
    w("elif stopc or (pc is None and fpu is None and not fb):")
    L.indent()
    w(f"rid = {_R_WAIT}")
    L.dedent()
    w("else:")
    L.indent()
    w(f"rid = {_R_FETCH}")
    L.dedent()
    w("if rid != lsid:")
    L.indent()
    if traced:
        w(f"if trace is not None and trace.mask & {_CAT_PIPE}:")
        L.indent()
        w(f"trace.emit({_CAT_PIPE}, RSN[rid], cycle, tid)")
        L.dedent()
    w("lsid = rid")
    L.dedent()
    w("if not issued:")
    L.indent()
    w(stall_line)
    L.dedent()
    w("act = bool(issued or resolved or committed or dispatched) "
      "or fpu != fpu_b")


def build_source(ms: bool, feat: int, inject_taken: bool = False) -> str:
    """Emit the ``_make(...)`` factory source for one unit-window body.

    The executor advances one unit for many cycles in one flat loop,
    with an in-frame quiescence skip, returning
    ``(next_cycle, exit_code, last_issue_cycle, busy_cycles)``.
    """
    mem = bool(feat & F_MEM)
    br = bool(feat & F_BRANCH)
    traced = bool(feat & F_TRACED)
    L = _Lines()
    w = L.w

    w("def _make(T, XV, DOK, RSE, RSN, EMPTY, u32, arch_next_pc,")
    w("          _InFlight, MemRetry):")
    L.indent()
    _emit_tables(L)
    w("def run(p, ctx, cycle, budget, counts):")
    L.indent()
    w("rob = p.rob")
    w("fb = p.fetch_buffer")
    w("lw = p.last_writer")
    w("unres = p.unresolved")
    w("fbv = p.fus._free_by_val")
    w("stats = p.stats")
    if traced:
        w("trace = p.trace")
        w("tid = p.trace_tid")
    w("pc = p.pc")
    w("fpu = p.fetch_pending_until")
    w("fpp = p.fetch_pending_pc")
    w("pstores = p.pending_stores")
    w("unissued = p._unissued")
    w("didx = p._dispatch_idx")
    w("lsid = int(p._last_stall)")
    w("window = p._window")
    w("fetchq = p._fetchq")
    w("stopc = p.stop_committed")
    w("fetch_group = ctx.fetch_group")
    if mem:
        w("mem_load = ctx.mem_load")
        w("mem_store = ctx.mem_store")
        if ms:
            w("store_prep = ctx.mem_store_prepare")
    if ms:
        w("machine = ctx.p")
        w("regs = ctx.cur_regs")
        w("pending = ctx.cur_pending")
    else:
        w("regs = ctx._regs")
    w("cur_bid = -1")
    w("busy = 0")
    w("last_issue = -1")
    w("committed_t = 0; dispatched_t = 0; fetched_t = 0")
    w("loads_t = 0; stores_t = 0")
    w("code = 0  # EV_LIMIT unless a guard or squash exits first")
    w("act = True")
    w("while cycle < budget:")
    L.indent()

    # ----------------------------------------------- pre-cycle guard
    # The guard runs before any of the cycle's effects, so a deopt
    # returns with `cycle` unexecuted and the interpreter replays it.
    w("# Guard: the next word to dispatch must be admitted by this")
    w("# body's dispatch table; annotated words, syscalls/halts, and")
    w("# words needing uncompiled arms deopt by exit kind.")
    w("if fb:")
    L.indent()
    w("x = XV[(fb[0][1] - TB) >> 2]")
    w("if x >= 0:")
    L.indent()
    w("code = x")
    w("break")
    L.dedent()
    L.dedent()

    _emit_phases(L, ms, mem, br, traced, inject_taken)

    if ms:
        w("# A committed store may have requested a squash (ARB")
        w("# memory violation) or an issue-time ARB overflow may")
        w("# have; the machine applies it at end of cycle, so exit")
        w("# with the cycle fully executed.")
        w("if machine._squash_request is not None:")
        L.indent()
        w("cycle += 1")
        w("code = 4  # EV_SQUASH")
        w("break")
        L.dedent()
    w("nxt = cycle + 1")
    w("if not act:")
    L.indent()
    w("# In-frame quiescence skip: identical to the run loops'")
    w("# wake_cycle skip (budget already encodes every external")
    w("# bound: horizon, ring, sequencer, sleeping units).")
    w("p._activity = False")
    w("p.fetch_pending_until = fpu")
    w("p.pending_stores = pstores")
    w("wake = p.wake_cycle(cycle)")
    w("if wake > nxt:")
    L.indent()
    w("if wake > budget:")
    L.indent()
    w("wake = budget")
    L.dedent()
    w("if wake > nxt:")
    L.indent()
    w("counts[lsid] += wake - nxt")
    w("nxt = wake")
    L.dedent()
    L.dedent()
    L.dedent()
    w("cycle = nxt")
    L.dedent()  # end while

    # --------------------------------------------------------- writeback
    w("p.pc = pc")
    w("p.fetch_pending_until = fpu")
    w("p.fetch_pending_pc = fpp")
    w("p.pending_stores = pstores")
    w("p._unissued = unissued")
    w("p._dispatch_idx = didx")
    w("p._last_stall = RSE[lsid]")
    w("p._activity = act")
    w("stats.committed += committed_t")
    w("stats.dispatched += dispatched_t")
    w("stats.fetched += fetched_t")
    w("stats.issued += busy")
    w("stats.loads += loads_t")
    w("stats.stores += stores_t")
    w("return cycle, code, last_issue, busy")
    L.dedent()
    w("return run")
    L.dedent()
    return L.source()


def build_machine_source(traced: bool, inject_taken: bool = False) -> str:
    """Emit the ``_make(...)`` factory for the machine-frame body.

    The executor transcribes the multiscalar machine loop: per cycle it
    checks the sequencer's assign gate, delivers due ring messages,
    walks the active tasks in order, accounts idle units, retires a
    drained stopped head, and applies the machine-level quiescence
    skip — all against the live machine object, calling its own
    methods (``_deliver_ring``, ``_apply_squash_request``,
    ``_try_retire``, ``_wake_cycle``, ``_account_skip``) for every
    machine-level event so their effects are the interpreter's own.

    Inside the walk, a unit whose in-flight state is regular (every
    ROB word COMMIT_OK and the next dispatch admitted by the dispatch
    table) becomes *resident*: its pipeline state is staged into two
    per-unit slots — a tuple of per-residency constants (aliases and
    bound methods) and a tuple of mutable scalars — and its cycles run
    the compiled phase transcription, with stats and task accounting
    folded eagerly every cycle so a squash or retirement observes
    exact live values. Irregular units run ``pipeline.step()`` — so
    annotated commits (forwards, releases, stops), syscalls, and
    squash-raising events execute interpreted at their exact walk
    position while other units stay compiled. Resident state is
    written back whenever the unit's next dispatch stops being
    admitted, and *dropped* (never written back) when the unit's task
    changes under it — retirement or a squash reset the pipeline,
    making staged scalars stale.

    The frame exits only when the machine halts (``EV_HALT``) or at
    the cycle budget (``EV_LIMIT``) — every machine-level event,
    including task assignment, is handled in-frame by the
    interpreter's own methods. Returns ``(next_cycle, exit_code,
    last_issue_cycle, machine_activity, resident_unit_cycles,
    interp_unit_cycles)`` — the two counters feed the engine's
    adaptive residency policy.
    """
    L = _Lines()
    w = L.w

    w("def _make(T, XV, COK, RSE, RSN, EMPTY, u32, arch_next_pc,")
    w("          _InFlight, MemRetry):")
    L.indent()
    _emit_tables(L)
    w("def run(m, cycle, budget):")
    L.indent()
    w("UNITS = m.units")
    w("ACT = m.active")
    w("NU = m.num_units")
    w("PIPES = []")
    w("CTXS = []")
    w("for slot in UNITS:")
    L.indent()
    w("PIPES.append(slot.pipeline)")
    w("CTXS.append(slot.context)")
    L.dedent()
    w("RNA = m.ring.next_arrival")
    w("dist = m.distribution")
    w("p0 = PIPES[0]")
    w("window = p0._window")
    w("fetchq = p0._fetchq")
    if traced:
        w("trace = m.trace")
    w("# Per-unit resident-state slots, indexed by unit number. A set")
    w("# DIRTY flag means the slots hold the unit's live pipeline")
    w("# state (the pipeline's own scalar fields are stale until")
    w("# written back): SB is the per-residency constant tuple")
    w("# (aliases, bound methods, task records), SM the mutable")
    w("# scalar tuple. NCOK caches the count of non-COMMIT_OK ROB")
    w("# words for non-resident units (-1 = unknown).")
    w("DIRTY = [0] * NU")
    w("NCOK = [-1] * NU")
    w("TREF = [None] * NU")
    w("SB = [None] * NU")
    w("SM = [None] * NU")
    w("ACTS = [False] * NU")
    w("def ld(u, task):")
    L.indent()
    w("p = PIPES[u]")
    w("c = CTXS[u]")
    w("tc = task.cycles")
    w("SB[u] = (p.rob, p.fetch_buffer, p.last_writer, p.unresolved,")
    w("         p.fus._free_by_val, p.stats, c.fetch_group,")
    w("         c.mem_load, c.mem_store, c.mem_store_prepare,")
    w("         c.cur_regs, c.cur_pending, tc.stall_cycles, tc,")
    if traced:
        w("         p.stop_committed, p.trace_tid)")
    else:
        w("         p.stop_committed)")
    w("SM[u] = (p.pc, p.fetch_pending_until, p.fetch_pending_pc,")
    w("         p.pending_stores, p._unissued, p._dispatch_idx,")
    w("         int(p._last_stall), -1)")
    w("TREF[u] = task")
    w("ACTS[u] = p._activity")
    w("DIRTY[u] = 1")
    L.dedent()
    w("def wb(u):")
    L.indent()
    w("p = PIPES[u]")
    w("(pc, fpu, fpp, pstores, unissued, didx, lsid, cur_bid) = SM[u]")
    w("p.pc = pc")
    w("p.fetch_pending_until = fpu")
    w("p.fetch_pending_pc = fpp")
    w("p.pending_stores = pstores")
    w("p._unissued = unissued")
    w("p._dispatch_idx = didx")
    w("p._last_stall = RSE[lsid]")
    w("p._activity = ACTS[u]")
    w("DIRTY[u] = 0")
    L.dedent()
    w("def drop_stale():")
    L.indent()
    w("# A task changed under a resident unit (retired, or its")
    w("# pipeline was reset by a squash — including the mispredict")
    w("# path, which applies *during* an interpreter step): the")
    w("# staged scalars are stale and must never be written back.")
    w("# Eager accounting means there is nothing left to fold.")
    w("j = 0")
    w("while j < NU:")
    L.indent()
    w("if DIRTY[j] and UNITS[j].task is not TREF[j]:")
    L.indent()
    w("DIRTY[j] = 0")
    w("NCOK[j] = -1")
    L.dedent()
    w("j += 1")
    L.dedent()
    L.dedent()
    w("code = 0  # EV_LIMIT unless halt exits first")
    w("last_issue = -1")
    w("lastact = True")
    w("nr = 0  # resident unit-cycles (compiled phases)")
    w("ni = 0  # interpreter-fallback unit-cycles")
    w("while cycle < budget:")
    L.indent()
    w("m.cycle = cycle  # machine methods read the live cycle")
    w("m._activity = False")
    w("m_act = False")
    w("rn = RNA()")
    w("if rn is not None and rn <= cycle:")
    L.indent()
    w("m._deliver_ring(cycle)")
    L.dedent()
    w("# Sequencer: the inline test is exactly _try_assign's refusal")
    w("# conditions (hoisted so the common no-assign cycle skips the")
    w("# call); the assignment itself — task build, pipeline reset,")
    w("# prediction — is the interpreter's own method. The assigned")
    w("# unit is never resident: its slot was freed by a retire or a")
    w("# squash, both of which drop staged state.")
    w("if m.next_pc is not None and cycle >= m.seq_busy_until \\")
    w("        and len(ACT) < NU and UNITS[m._next_unit].task is None:")
    L.indent()
    w("m._try_assign(cycle)")
    L.dedent()
    w("noted = 0")
    w("i = 0")
    w("while i < len(ACT):")
    L.indent()
    w("task = ACT[i]")
    w("i += 1")
    w("if task.squashed:")
    L.indent()
    w("continue")
    L.dedent()
    w("u = task.unit_index")
    w("if UNITS[u].task is not task:")
    L.indent()
    w("continue")
    L.dedent()
    w("if task.sleep_until > cycle:")
    L.indent()
    w("task.cycles.stall_cycles[PIPES[u]._last_stall] += 1")
    w("noted += 1")
    w("continue")
    L.dedent()
    w("if DIRTY[u]:")
    L.indent()
    w("sb = SB[u]")
    w("fb = sb[1]")
    w("if fb and XV[(fb[0][1] - TB) >> 2] >= 0:")
    L.indent()
    w("# Next dispatch not admitted (annotated word, syscall,")
    w("# halt): demote this unit to its interpreter.")
    w("wb(u)")
    w("NCOK[u] = 0")
    L.dedent()
    L.dedent()
    w("else:")
    L.indent()
    w("# Cheap test first: an inadmissible next dispatch (annotated")
    w("# word — the common irregularity) declines without touching")
    w("# the ROB; only an admissible head pays the COMMIT_OK scan.")
    w("p = PIPES[u]")
    w("fb = p.fetch_buffer")
    w("if (not fb) or XV[(fb[0][1] - TB) >> 2] < 0:")
    L.indent()
    w("n2 = NCOK[u]")
    w("if n2 < 0:")
    L.indent()
    w("n2 = 0")
    w("for r in p.rob:")
    L.indent()
    w("wv = (r.pc - TB) >> 2")
    w("if wv < 0 or wv >= NW or not COK[wv]:")
    L.indent()
    w("n2 += 1")
    L.dedent()
    L.dedent()
    w("NCOK[u] = n2")
    L.dedent()
    w("if n2 == 0:")
    L.indent()
    w("ld(u, task)")
    w("sb = SB[u]")
    L.dedent()
    L.dedent()
    L.dedent()
    w("if DIRTY[u]:")
    L.indent()
    if traced:
        w("(rob, fb, lw, unres, fbv, stats, fetch_group, mem_load,")
        w(" mem_store, store_prep, regs, pending, tsc, tcy, stopc,")
        w(" tid) = sb")
    else:
        w("(rob, fb, lw, unres, fbv, stats, fetch_group, mem_load,")
        w(" mem_store, store_prep, regs, pending, tsc, tcy,")
        w(" stopc) = sb")
    w("(pc, fpu, fpp, pstores, unissued, didx, lsid, cur_bid) = SM[u]")
    w("busy = 0")
    w("nr += 1")
    w("committed_t = 0; dispatched_t = 0; fetched_t = 0")
    w("loads_t = 0; stores_t = 0")

    _emit_phases(L, ms=True, mem=True, br=True, traced=traced,
                 inject_taken=inject_taken,
                 stall_line="tsc[RSE[rid]] += 1")

    w("SM[u] = (pc, fpu, fpp, pstores, unissued, didx, lsid, cur_bid)")
    w("ACTS[u] = act")
    w("# Eager accounting: stats and task cycles are always live,")
    w("# so squash discard and retirement fold exact values.")
    w("if committed_t:")
    L.indent()
    w("stats.committed += committed_t")
    L.dedent()
    w("if dispatched_t:")
    L.indent()
    w("stats.dispatched += dispatched_t")
    L.dedent()
    w("if fetched_t:")
    L.indent()
    w("stats.fetched += fetched_t")
    L.dedent()
    w("if loads_t:")
    L.indent()
    w("stats.loads += loads_t")
    L.dedent()
    w("if stores_t:")
    L.indent()
    w("stats.stores += stores_t")
    L.dedent()
    w("if issued:")
    L.indent()
    w("stats.issued += 1")
    w("tcy.busy_cycles += 1")
    L.dedent()
    w("noted += 1")
    w("if act:")
    L.indent()
    w("m_act = True")
    L.dedent()
    w("elif m._squash_request is None:")
    L.indent()
    w("# Mirror the machine walk's unit-level sleep decision.")
    w("p = PIPES[u]")
    w("p._activity = False")
    w("p.fetch_pending_until = fpu")
    w("p.pending_stores = pstores")
    w("p._last_stall = RSE[lsid]")
    w("wake = p.wake_cycle(cycle)")
    w("if wake > cycle + 1:")
    L.indent()
    w("task.sleep_until = wake")
    L.dedent()
    L.dedent()
    L.dedent()
    w("else:")
    L.indent()
    w("p = PIPES[u]")
    w("na = len(ACT)")
    w("ni += 1")
    w("issued, reason = p.step(cycle)")
    w("tcy = task.cycles")
    w("if issued:")
    L.indent()
    w("tcy.busy_cycles += 1")
    w("last_issue = cycle")
    L.dedent()
    w("else:")
    L.indent()
    w("tcy.stall_cycles[reason] += 1")
    L.dedent()
    w("noted += 1")
    w("if p._activity:")
    L.indent()
    w("m_act = True")
    L.dedent()
    w("NCOK[u] = -1")
    w("if len(ACT) != na:")
    L.indent()
    w("# A mispredict squash applied in-step (task_stopped ->")
    w("# _squash_from discards directly, without a request).")
    w("drop_stale()")
    L.dedent()
    w("if m._squash_request is None and not issued \\")
    w("        and not p._activity:")
    L.indent()
    w("wake = p.wake_cycle(cycle)")
    w("if wake > cycle + 1:")
    L.indent()
    w("task.sleep_until = wake")
    L.dedent()
    L.dedent()
    L.dedent()
    w("if m._squash_request is not None:")
    L.indent()
    w("# Apply at this exact walk position, as the machine loop")
    w("# does; the walk then continues over the survivors.")
    w("m._apply_squash_request(cycle)")
    w("m_act = True")
    w("drop_stale()")
    L.dedent()
    L.dedent()  # end walk
    w("dist.idle += NU - noted")
    w("if ACT:")
    L.indent()
    w("h = ACT[0]")
    w("if h.stopped and not h.pending and not h.deferred \\")
    w("        and not PIPES[h.unit_index].rob:")
    L.indent()
    w("# Exact _try_retire gate (its refusal paths have no side")
    w("# effects). Retirement sets _last_progress itself — the gate")
    w("# passing is NOT progress (a refused retire must still trip")
    w("# the livelock watchdog), so last_issue is left alone here.")
    w("m._try_retire(cycle)")
    w("drop_stale()")
    L.dedent()
    L.dedent()
    w("lastact = m_act or m._activity")
    w("cycle += 1")
    w("if m.halted:")
    L.indent()
    w("code = 3  # EV_HALT")
    w("break")
    L.dedent()
    w("if not lastact:")
    L.indent()
    w("# Machine-level quiescence skip, bounded by the entry budget")
    w("# (always <= the live horizon: progress only moves it out).")
    w("wkc = m._wake_cycle(cycle - 1)")
    w("if wkc > cycle:")
    L.indent()
    w("if wkc > budget:")
    L.indent()
    w("wkc = budget")
    L.dedent()
    w("if wkc > cycle:")
    L.indent()
    w("m._account_skip(cycle, wkc)")
    w("cycle = wkc")
    L.dedent()
    L.dedent()
    L.dedent()
    L.dedent()  # end while
    w("u = 0")
    w("while u < NU:")
    L.indent()
    w("if DIRTY[u]:")
    L.indent()
    w("wb(u)")
    L.dedent()
    w("u += 1")
    L.dedent()
    w("return (cycle, code, last_issue, lastact, nr, ni)")
    L.dedent()
    w("return run")
    L.dedent()
    return L.source()


def compile_body(tables, xdok: list, dok: list, ms: bool, feat: int,
                 inject_taken: bool = False):
    """Compile one unit-window variant and bind it over ``tables``."""
    label = "ms" if ms else "scalar"
    src = build_source(ms, feat, inject_taken)
    namespace: dict = {}
    exec(compile(src, f"<jit:{label}:trace:feat{feat}>", "exec"),
         namespace)
    return namespace["_make"](tables, xdok, dok, _RS_ENUM, _RS_NAME,
                              _EMPTY_SRCS, _u32, _arch_next_pc,
                              _InFlight, _MemRetry)


def compile_machine_body(tables, xdok: list, cok: list, traced: bool,
                         inject_taken: bool = False):
    """Compile one machine-frame variant and bind it over ``tables``."""
    src = build_machine_source(traced, inject_taken)
    namespace: dict = {}
    exec(compile(src, f"<jit:ms:machine:traced{int(traced)}>", "exec"),
         namespace)
    return namespace["_make"](tables, xdok, cok, _RS_ENUM, _RS_NAME,
                              _EMPTY_SRCS, _u32, _arch_next_pc,
                              _InFlight, _MemRetry)
