"""Tokenizer for MinC."""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {
    "int", "float", "void", "byte", "if", "else", "while", "for", "return",
    "break", "continue", "parallel",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<fnum>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op><<=?|>>=?|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|[+\-*/%<>=!&|^~(),;{}\[\]])
""", re.VERBOSE | re.DOTALL)


class LexError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str       # 'num', 'fnum', 'string', 'ident', 'kw', 'op', 'eof'
    text: str
    value: object   # parsed value for literals
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            line += text.count("\n")
            pos = match.end()
            continue
        if kind == "num":
            token = Token("num", text, int(text, 0), line)
        elif kind == "fnum":
            token = Token("fnum", text, float(text), line)
        elif kind == "char":
            body = text[1:-1].encode().decode("unicode_escape")
            token = Token("num", text, ord(body), line)
        elif kind == "string":
            body = text[1:-1].encode().decode("unicode_escape")
            token = Token("string", text, body, line)
        elif kind == "ident":
            if text in KEYWORDS:
                token = Token("kw", text, text, line)
            else:
                token = Token("ident", text, text, line)
        else:
            token = Token("op", text, text, line)
        tokens.append(token)
        line += text.count("\n")
        pos = match.end()
    tokens.append(Token("eof", "", None, line))
    return tokens
