"""Ablation for Section 2.3's alternate microarchitecture: shared FUs.

"An alternative microarchitecture might share the functional units
(such as the floating point units) between the different processing
units."

We compare private vs shared FP/complex-integer units on the FP-bound
workload (tomcatv) and an integer one (cmp). The paper's implication —
that sharing expensive units is a viable engineering trade — shows up
as a small slowdown on the FP code and none on integer code.
"""

from dataclasses import replace

from repro.config import multiscalar_config
from repro.core import MultiscalarProcessor
from repro.workloads import WORKLOADS


def run(name, shared, issue_width=1, ooo=False):
    spec = WORKLOADS[name]
    config = replace(multiscalar_config(8, issue_width, ooo),
                     shared_fp_units=shared)
    result = MultiscalarProcessor(spec.multiscalar_program(), config).run()
    assert result.output == spec.expected_output
    return result.cycles


def build():
    rows = {}
    for name in ("tomcatv", "cmp"):
        for width, ooo in ((1, False), (2, True)):
            key = (name, width, ooo)
            rows[key] = (run(name, False, width, ooo),
                         run(name, True, width, ooo))
    return rows


def test_shared_fp_units(once):
    rows = once(build)
    print()
    for (name, width, ooo), (private, shared) in rows.items():
        mode = f"{width}-way {'ooo' if ooo else 'in-order'}"
        print(f"{name:8} {mode:16}: private {private:7d}  "
              f"shared {shared:7d}  (+{shared / private - 1:+.1%})")
    # Sharing never changes results and costs at most a mild slowdown on
    # the FP-heavy code; the integer workload is untouched.
    for (name, width, ooo), (private, shared) in rows.items():
        assert shared >= private * 0.999, (name, width, ooo)
        if name == "cmp":
            assert shared <= private * 1.05
    fp_key = ("tomcatv", 2, True)
    assert rows[fp_key][1] >= rows[fp_key][0]
