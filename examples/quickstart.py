#!/usr/bin/env python3
"""Quickstart: compile a MinC program, run it scalar and multiscalar.

This walks the full pipeline of the reproduction:

1. compile MinC source (the paper's "modified GCC") to assembly;
2. assemble and auto-annotate it (task descriptors, create masks,
   forward/stop bits, releases — Section 2.2 of the paper);
3. run the scalar baseline and several multiscalar configurations;
4. report speedups, task-prediction accuracy, and squash counts.

Run:  python examples/quickstart.py
"""

from repro.config import multiscalar_config, scalar_config
from repro.core import MultiscalarProcessor, ScalarProcessor
from repro.minic import compile_and_annotate, compile_scalar

SOURCE = """
int data[64];
void main() {
    // Fill the array (each row of work is independent).
    int i = 0;
    parallel while (i < 64) {
        int k = i;
        i += 1;                 // early induction update (paper §3.2.2)
        int acc = 0;
        for (int j = 0; j <= k % 11; j += 1) { acc += (k + j) * j; }
        data[k] = acc;
    }
    int total = 0;
    for (int k = 0; k < 64; k += 1) { total += data[k]; }
    print_str("total=");
    print_int(total);
    print_char('\\n');
}
"""


def main() -> None:
    scalar_program = compile_scalar(SOURCE, "quickstart")
    multi_program = compile_and_annotate(SOURCE, "quickstart")

    print("Task descriptors the compiler produced:")
    for descriptor in multi_program.tasks.values():
        print("  " + descriptor.describe())
    print()

    scalar = ScalarProcessor(scalar_program, scalar_config()).run()
    print(f"scalar:        {scalar.cycles:6d} cycles, "
          f"IPC {scalar.ipc:.2f}, output: {scalar.output.strip()}")

    for units in (2, 4, 8):
        result = MultiscalarProcessor(
            multi_program, multiscalar_config(units)).run()
        assert result.output == scalar.output
        print(f"{units}-unit multi: {result.cycles:6d} cycles, "
              f"speedup {scalar.cycles / result.cycles:.2f}x, "
              f"task prediction {result.prediction_accuracy:.1%}, "
              f"{result.tasks_retired} tasks retired, "
              f"{result.tasks_squashed} squashed")


if __name__ == "__main__":
    main()
