"""The Section-2.2 software growth path: strip and re-annotate binaries.

"The job of migrating a multiscalar program from one generation to
another generation of hardware might be as simple as taking an old
binary, determining the CFG (a routine task), deciding upon a task
structure, and producing a new binary."
"""

import pytest

from repro.compiler import annotate_program
from repro.compiler.annotate import strip_annotations
from repro.config import multiscalar_config
from repro.core.processor import MultiscalarProcessor
from repro.isa import FunctionalCPU, assemble
from repro.isa.opcodes import Op, StopKind
from repro.minic import compile_and_annotate, compile_scalar

SOURCE = """
int out[32];
void main() {
    int i = 0;
    parallel while (i < 32) {
        int k = i;
        i += 1;
        int acc = 0;
        for (int j = 0; j <= k % 5; j += 1) { acc += k * j; }
        out[k] = acc;
    }
    int t = 0;
    for (int k = 0; k < 32; k += 1) { t += out[k]; }
    print_int(t);
}
"""


@pytest.fixture(scope="module")
def annotated():
    return compile_and_annotate(SOURCE)


@pytest.fixture(scope="module")
def expected():
    cpu = FunctionalCPU(compile_scalar(SOURCE))
    cpu.run()
    return cpu.output


def test_strip_removes_all_annotations(annotated):
    stripped = strip_annotations(annotated)
    assert not stripped.is_multiscalar()
    for instr in stripped.instructions:
        assert instr.op is not Op.RELEASE
        assert not instr.forward
        assert instr.stop is StopKind.NONE


def test_stripped_binary_runs_identically(annotated, expected):
    stripped = strip_annotations(annotated)
    cpu = FunctionalCPU(stripped)
    cpu.run()
    assert cpu.output == expected
    # It is smaller: the releases are gone.
    assert len(stripped.instructions) <= len(annotated.instructions)


def test_branch_into_deleted_release_remapped(expected):
    # A release sits at a branch target (block top); deleting it must
    # redirect the branch to the following instruction.
    source = """
        .task loop targets=loop,done
main:   li $s0, 0
        li $t0, 0
loop:   addi $t0, $t0, 1
        add $s0, $s0, $t0
        blt $t0, 12, loop
done:   move $a0, $s0
        li $v0, 1
        syscall
        halt
    """
    annotated = annotate_program(assemble(source))
    assert any(i.op is Op.RELEASE for i in annotated.instructions)
    stripped = strip_annotations(annotated)
    cpu = FunctionalCPU(stripped)
    cpu.run()
    assert cpu.output == str(sum(range(1, 13)))


def test_migration_to_new_generation(annotated, expected):
    # Old generation: loop-iteration tasks. New generation: strip, then
    # re-partition with every natural loop as a task.
    stripped = strip_annotations(annotated)
    new_generation = annotate_program(stripped, auto_loops=True)
    assert new_generation.is_multiscalar()
    result = MultiscalarProcessor(new_generation,
                                  multiscalar_config(4)).run()
    assert result.output == expected


def test_round_trip_annotation_is_stable(annotated, expected):
    # strip(annotate(strip(annotate(p)))) keeps executing correctly.
    once = strip_annotations(annotated)
    twice = strip_annotations(
        annotate_program(once, auto_loops=True))
    cpu = FunctionalCPU(twice)
    cpu.run()
    assert cpu.output == expected
    assert len(twice.instructions) == len(once.instructions)
