"""Ablation for Section 4.1: "Branch prediction accuracy must limit ILP."

The paper: "Suppose we encounter an average of 20 branches (match
tests) in traversing the linked list, the execution of an 8-unit
multiscalar processor might span 160 conditional branches, yet still be
following the correct dynamic path. The conventional approach, which
must sequentially predict all branches as it proceeds, is practically
guaranteed to predict wrong eventually."

We make that quantitative on the Figure 3 workload: extract the dynamic
conditional-branch stream from a functional run, drive a classic 2-bit
per-branch predictor over it, and compare the probability of being on
the correct path after spanning the same dynamic window as the 8-unit
multiscalar machine (which only predicts its 8 task boundaries).
"""

from repro.harness.runner import run_multiscalar
from repro.isa import FunctionalCPU
from repro.isa.opcodes import Kind
from repro.workloads import WORKLOADS


def branch_stream(spec):
    cpu = FunctionalCPU(spec.scalar_program(), trace=True)
    cpu.run()
    outcomes = []
    for i, (pc, instr) in enumerate(cpu.trace_log):
        if instr.kind is Kind.BRANCH and i + 1 < len(cpu.trace_log):
            taken = cpu.trace_log[i + 1][0] != pc + 4
            outcomes.append((pc, taken))
    return outcomes


def two_bit_accuracy(outcomes):
    counters: dict[int, int] = {}
    correct = 0
    for pc, taken in outcomes:
        counter = counters.get(pc, 1)   # weakly not-taken
        predict_taken = counter >= 2
        if predict_taken == taken:
            correct += 1
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        counters[pc] = counter
    return correct / len(outcomes)


def build():
    spec = WORKLOADS["example"]
    outcomes = branch_stream(spec)
    branch_acc = two_bit_accuracy(outcomes)
    multi = run_multiscalar("example", 8, 1, False)
    # Dynamic window of the 8-unit machine, in branches per task.
    branches_per_task = len(outcomes) / max(1, multi.tasks_retired)
    window_branches = 8 * branches_per_task
    superscalar_path_prob = branch_acc ** window_branches
    multiscalar_path_prob = multi.prediction_accuracy ** 8
    return (branch_acc, window_branches, superscalar_path_prob,
            multi.prediction_accuracy, multiscalar_path_prob)


def test_window_accuracy(once):
    (branch_acc, window, super_prob, task_acc, multi_prob) = once(build)
    print(f"\nper-branch 2-bit accuracy on the Figure-3 kernel: "
          f"{branch_acc:.1%}")
    print(f"8-unit window spans ~{window:.0f} dynamic branches")
    print(f"P(superscalar window on correct path) = "
          f"{branch_acc:.3f}^{window:.0f} = {super_prob:.2e}")
    print(f"P(multiscalar window on correct path) = "
          f"{task_acc:.3f}^8 = {multi_prob:.2f}")
    # The paper's argument, quantified: the task-level walk keeps a
    # usable window where per-branch speculation could not.
    assert window > 40
    assert multi_prob > 0.5
    assert super_prob < 0.05
    assert multi_prob > 10 * super_prob
