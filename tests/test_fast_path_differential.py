"""The fast path must be invisible in the results.

The simulator's layered fast path (pre-decoded micro-ops, table-driven
semantics closures, quiescence-aware cycle skipping, per-unit sleep) is
a pure performance optimisation: running any program with
``fast_path=False`` — the plain per-cycle reference interpreter — must
produce an *identical* result dictionary, including the cycle count,
the stall breakdown, and the full CycleDistribution.

These tests pin that contract three ways:

* every bundled workload, scalar and multiscalar, fast vs reference;
* a seeded batch of fuzzer-generated programs, plus the difftest
  oracle/campaign plumbing that carries ``fast_path`` as a grid axis;
* the injection seam: planted semantic bugs force the generic paths so
  differential fuzzing cannot be blinded by the pre-bound closures.
"""

from __future__ import annotations

import pytest

from repro.config import multiscalar_config, scalar_config
from repro.core.processor import MultiscalarProcessor
from repro.core.scalar import ScalarProcessor
from repro.difftest import (
    BackendSpec,
    FuzzCampaign,
    check_program,
    generator_for,
    inject_opcode_bug,
)
from repro.difftest.oracle import ProgramInvalid, compile_backends
from repro.isa.opcodes import Op
from repro.workloads import WORKLOADS

WORKLOAD_NAMES = tuple(WORKLOADS)


def _scalar_dict(program, fast_path: bool) -> dict:
    config = scalar_config(fast_path=fast_path)
    return ScalarProcessor(program, config).run().to_dict()


def _multi_dict(program, units: int, fast_path: bool) -> dict:
    config = multiscalar_config(num_units=units, fast_path=fast_path)
    return MultiscalarProcessor(program, config).run().to_dict()


# ------------------------------------------------------- all workloads

@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_scalar_fast_path_matches_reference(name):
    program = WORKLOADS[name].scalar_program()
    assert _scalar_dict(program, True) == _scalar_dict(program, False)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_multiscalar_fast_path_matches_reference(name):
    program = WORKLOADS[name].multiscalar_program()
    assert _multi_dict(program, 4, True) == _multi_dict(program, 4, False)


def test_fast_path_matches_reference_at_eight_units():
    # Wider machines exercise the ring, the ARB, and the per-unit sleep
    # wake events harder; one representative case keeps the suite fast.
    program = WORKLOADS["cmp"].multiscalar_program()
    assert _multi_dict(program, 8, True) == _multi_dict(program, 8, False)


# -------------------------------------------------- generated programs

def test_generated_programs_fast_path_matches_reference():
    checked = 0
    for index in range(6):
        language = ("asm", "minic")[index % 2]
        generated = generator_for(language).generate(9000 + index)
        try:
            scalar_bin, multi_bin = compile_backends(generated)
        except ProgramInvalid:
            continue
        assert _scalar_dict(scalar_bin, True) \
            == _scalar_dict(scalar_bin, False)
        assert _multi_dict(multi_bin, 4, True) \
            == _multi_dict(multi_bin, 4, False)
        checked += 1
    assert checked >= 4  # the seeds above are known-good generators


def test_oracle_grid_carries_the_fast_path_axis():
    generated = generator_for("asm").generate(41)
    grid = (
        BackendSpec("scalar", 1, 1, False),
        BackendSpec("scalar", 1, 1, False, fast_path=False),
        BackendSpec("multiscalar", 4, 1, False),
        BackendSpec("multiscalar", 4, 1, False, fast_path=False),
    )
    report = check_program(generated, grid=grid)
    assert report.ok, report.render()
    assert "scalar:1w-io-ref" in report.backends_run
    assert "ms:4u-1w-io-ref" in report.backends_run


def test_campaign_fast_path_axis():
    result = FuzzCampaign(seed=23, budget=6, languages=("asm",),
                          units=(2, 4), widths=(1,), orders=(False,),
                          fast_paths=(True, False)).run()
    assert result.ok, result.report.render()
    assert any(label.endswith("-ref") for label in result.backends_used)


# ------------------------------------------------------ injection seam

def test_injection_disables_the_pre_bound_closures():
    program = WORKLOADS["example"].multiscalar_program()
    with inject_opcode_bug(Op.XOR, backends=frozenset({"multiscalar"})):
        processor = MultiscalarProcessor(program, multiscalar_config())
        assert all(not slot.pipeline._fast for slot in processor.units)
        scalar = ScalarProcessor(WORKLOADS["example"].scalar_program())
        assert not scalar.pipeline._fast
    processor = MultiscalarProcessor(program, multiscalar_config())
    assert all(slot.pipeline._fast for slot in processor.units)


def test_no_fast_path_flag_reaches_the_pipelines():
    program = WORKLOADS["example"].multiscalar_program()
    config = multiscalar_config(fast_path=False)
    processor = MultiscalarProcessor(program, config)
    assert all(not slot.pipeline._fast for slot in processor.units)
    assert not processor._fast
