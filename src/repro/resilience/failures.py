"""The typed simulation-failure taxonomy.

Every way a simulation can fail to complete is a subclass of
:class:`SimulationFailure`, so callers (the job engine, the chaos
harness, tests) can catch one type instead of pattern-matching
messages — and so that a hung simulator surfaces as a structured
:class:`LivelockError` carrying a per-unit diagnostic dump rather than
an open-ended stall that only a blunt process kill resolves.

This module deliberately imports nothing from the simulator packages:
the processors import *it* (their historical ``SimulationTimeout``
classes are retyped as :class:`CycleBudgetError` subclasses, so
existing ``except SimulationTimeout`` call sites keep working).
"""

from __future__ import annotations


class SimulationFailure(Exception):
    """Base class of every typed simulator failure."""


class CycleBudgetError(SimulationFailure):
    """The cycle budget was exhausted before the program halted."""


class InstructionBudgetError(SimulationFailure):
    """The watchdog's executed-instruction budget was exceeded."""


class MemoryBudgetError(SimulationFailure):
    """The watchdog's simulated-state budget (ARB entries, touched
    memory pages, in-flight window) was exceeded."""


class LivelockError(SimulationFailure):
    """No forward progress (no issue/assign/retire) for a whole
    progress window.

    ``units`` holds one diagnostic dict per active task, oldest first
    (``unit``, ``task``, ``seq``, ``stopped``, ``pending``, ``rob``,
    ``pc``); the message names the stuck head task so a log line alone
    identifies the culprit.
    """

    def __init__(self, message: str, *, cycle: int = 0,
                 last_progress: int = 0,
                 units: tuple[dict, ...] = ()) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.last_progress = last_progress
        self.units = tuple(units)

    @property
    def stuck_unit(self) -> dict | None:
        """The head (oldest, hence blocking) task's diagnostic entry."""
        return self.units[0] if self.units else None
