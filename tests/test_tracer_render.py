"""Direct tests for the task-timeline renderer and its event filters.

These build :class:`TaskEvent` streams by hand, so every rendering
branch — squash glyphs, retire markers, scale compression, units with
no events — is pinned down without running a simulation.
"""

from repro.core.tracer import TaskEvent, TaskTracer


class _FakeTask:
    def __init__(self, seq, unit, entry=0x400, name="loop"):
        self.seq = seq
        self.unit_index = unit
        self.entry = entry

        class _Descriptor:
            pass

        self.descriptor = _Descriptor()
        self.descriptor.name = name


def tracer_with(num_units=2):
    tracer = TaskTracer()
    tracer._num_units = num_units
    return tracer


def test_filters_partition_events_by_fate():
    tracer = tracer_with()
    tracer.task_assigned(_FakeTask(0, 0), cycle=0)
    tracer.task_assigned(_FakeTask(1, 1), cycle=0)
    tracer.task_assigned(_FakeTask(2, 0), cycle=5)
    tracer.task_retired(_FakeTask(0, 0), cycle=4)
    tracer.task_squashed(_FakeTask(1, 1), cycle=3)
    retired = tracer.retired()
    squashed = tracer.squashed()
    assert [e.seq for e in retired] == [0]
    assert [e.seq for e in squashed] == [1]
    # Task 2 is still active: in neither filter.
    assert tracer.events[2].fate == "active"
    assert all(e.fate == "retired" for e in retired)
    assert all(e.fate == "squashed" for e in squashed)


def test_lifecycle_callbacks_ignore_unknown_tasks():
    tracer = tracer_with()
    tracer.task_retired(_FakeTask(99, 0), cycle=10)    # never assigned
    tracer.task_squashed(_FakeTask(98, 0), cycle=10)
    tracer.task_stopped(_FakeTask(97, 0), cycle=10)
    assert tracer.events == {}


def test_render_marks_squashed_and_retired_distinctly():
    tracer = tracer_with(num_units=2)
    tracer.task_assigned(_FakeTask(0, 0), cycle=0)
    tracer.task_retired(_FakeTask(0, 0), cycle=10)
    tracer.task_assigned(_FakeTask(1, 1), cycle=2)
    tracer.task_squashed(_FakeTask(1, 1), cycle=8)
    art = tracer.render(width=50)
    unit0, unit1 = [line for line in art.splitlines() if "|" in line]
    assert "R" in unit0 and "x" not in unit0
    assert "x" in unit1 and "R" not in unit1
    assert "=" in unit0


def test_render_scales_long_timelines_to_width():
    tracer = tracer_with(num_units=1)
    tracer.task_assigned(_FakeTask(0, 0), cycle=0)
    tracer.task_retired(_FakeTask(0, 0), cycle=999)
    art = tracer.render(width=10)
    assert "timeline (100 cycles/column, 1000 cycles total)" in art
    row = [line for line in art.splitlines() if line.startswith("unit")][0]
    assert len(row.split("|")[1]) == 10


def test_render_includes_units_that_never_ran_a_task():
    tracer = tracer_with(num_units=3)
    tracer.task_assigned(_FakeTask(0, 1), cycle=0)
    tracer.task_retired(_FakeTask(0, 1), cycle=4)
    art = tracer.render()
    lines = [line for line in art.splitlines() if line.startswith("unit")]
    assert len(lines) == 3
    assert set(lines[0].split("|")[1]) == {"."}    # unit 0 always idle
    assert set(lines[2].split("|")[1]) == {"."}    # unit 2 always idle


def test_render_without_attach_falls_back_to_max_unit():
    tracer = TaskTracer()     # never attached: no _num_units
    tracer.task_assigned(_FakeTask(0, 2), cycle=0)
    tracer.task_retired(_FakeTask(0, 2), cycle=3)
    lines = [line for line in tracer.render().splitlines()
             if line.startswith("unit")]
    assert len(lines) == 3    # units 0..2 inferred from events


def test_render_active_task_extends_to_end_without_marker():
    tracer = tracer_with(num_units=1)
    tracer.task_assigned(_FakeTask(0, 0), cycle=0)   # never ends
    art = tracer.render(width=20)
    row = [line for line in art.splitlines() if line.startswith("unit")][0]
    body = row.split("|")[1]
    assert "=" in body and "R" not in body and "x" not in body


def test_empty_render_and_summary():
    tracer = TaskTracer()
    assert tracer.render() == "(no tasks traced)"
    assert "0 tasks retired, 0 squashed" in tracer.summary()
