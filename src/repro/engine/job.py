"""The engine's job model: one simulation request, content-addressed.

A :class:`SimJob` names everything that determines a simulation's
result — the program (a registered workload or an inline source), the
backend kind, and the machine configuration axes. :meth:`SimJob.key`
hashes all of it together with a fingerprint of the simulator's own
source code, so a cached result self-invalidates the moment either the
program or the simulator changes.

Executing a job yields a *payload*: a small JSON-serializable dict
(``{"type": ..., "result": ...}``) that round-trips through the
persistent store and reconstructs the original result object via
:func:`result_from_payload`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from dataclasses import replace as _dc_replace

from repro.compiler import CompilerKnobs
from repro.config import MachineConfig, multiscalar_config, scalar_config
from repro.core.processor import MultiscalarProcessor, MultiscalarResult
from repro.core.scalar import ScalarProcessor, ScalarResult

#: Bump when the job-key recipe or payload layout changes shape.
JOB_SCHEMA_VERSION = 2

DEFAULT_MAX_CYCLES = 20_000_000


class SimulationMismatchError(RuntimeError):
    """A simulated run produced output that differs from the workload's
    expected output. Raised unconditionally (unlike a bare ``assert``,
    it survives ``python -O``); the engine reports it as a *job
    failure*, never as a worker crash."""


#: Per-process memo for :func:`code_fingerprint`, seeded from (and
#: published to) the environment so pool workers inherit the parent's
#: fingerprint instead of re-hashing the whole package per process.
_FINGERPRINT_ENV = "REPRO_CODE_FINGERPRINT"
_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, so results cached by one
    version of the simulator are invisible to every other version."""
    global _fingerprint
    if _fingerprint is None:
        inherited = os.environ.get(_FINGERPRINT_ENV)
        if inherited:
            _fingerprint = inherited
        else:
            import repro

            root = Path(repro.__file__).parent
            digest = hashlib.sha256()
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
            _fingerprint = digest.hexdigest()[:16]
            os.environ[_FINGERPRINT_ENV] = _fingerprint
    return _fingerprint


@dataclass(frozen=True)
class SimJob:
    """One simulation request.

    ``kind`` is ``"scalar"`` (timing baseline), ``"multiscalar"``
    (timing, ``units`` processing units), or ``"count"`` (functional
    dynamic-instruction count). The program is either a registered
    workload (``workload`` set) or an inline source (``source`` +
    ``language`` + ``entries``).
    """

    kind: str
    workload: str | None = None
    source: str | None = None
    language: str = "minic"            # inline programs: "minic" | "asm"
    entries: tuple[str, ...] = ()      # inline programs: task entries
    annotated: bool = False            # count jobs: which binary
    units: int = 1
    issue_width: int = 1
    out_of_order: bool = False
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: Simulator knob, not a machine axis: False forces the reference
    #: per-cycle path. Results are cycle-exact either way, but the key
    #: still separates the two so ``--no-fast-path`` runs never serve
    #: (or pollute) fast-path cache entries.
    fast_path: bool = True
    #: Simulator knob: False disables the trace-JIT (``--no-jit``).
    #: Cycle-exact either way, but keyed separately for the same
    #: reason as ``fast_path``.
    jit: bool = True
    # -------- hardware axes beyond the paper's Section-5.1 defaults
    #: Cycles per ring hop (paper default 1).
    ring_hop: int = 1
    #: ARB entries per data-cache bank (paper default 256).
    arb_entries: int = 256
    #: Predictor first-level (history) table entries.
    pred_history: int = 64
    #: Predictor second-level (pattern) table entries.
    pred_pattern: int = 4096
    #: Data-cache bank size in KB (paper default 8).
    dcache_bank_kb: int = 8
    # -------- compiler knobs (annotated binaries only)
    #: Static-instruction task-size cap, 0 = unlimited.
    task_size: int = 0
    #: Loop-cutting strategy: "marked" | "all" | "none".
    loop_cut: str = "marked"
    #: Create-mask policy: "pruned" | "maydef".
    create_mask: str = "pruned"

    def __post_init__(self) -> None:
        if self.kind not in ("scalar", "multiscalar", "count"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if (self.workload is None) == (self.source is None):
            raise ValueError("exactly one of workload/source required")
        # Raises ValueError on a bad knob combination.
        knobs = CompilerKnobs(task_size=self.task_size,
                              loop_cut=self.loop_cut,
                              create_mask=self.create_mask)
        if self.kind != "multiscalar" and not self._hw_is_default():
            raise ValueError(
                "hardware axes (ring_hop/arb_entries/pred_*/dcache_bank_kb)"
                " only apply to multiscalar jobs")
        if not self._annotated() and not knobs.is_default:
            raise ValueError(
                "compiler knobs only apply to annotated binaries")

    def _hw_is_default(self) -> bool:
        return (self.ring_hop == 1 and self.arb_entries == 256
                and self.pred_history == 64 and self.pred_pattern == 4096
                and self.dcache_bank_kb == 8)

    def compiler_knobs(self) -> CompilerKnobs | None:
        """The job's knob setting, or ``None`` at the defaults (so the
        per-workload compile cache shares one entry with callers that
        never pass knobs)."""
        knobs = CompilerKnobs(task_size=self.task_size,
                              loop_cut=self.loop_cut,
                              create_mask=self.create_mask)
        return None if knobs.is_default else knobs

    # ---------------------------------------------------------- identity

    def _program_identity(self) -> dict:
        if self.workload is not None:
            spec = _workload_spec(self.workload)
            return {
                "workload": self.workload,
                "source_sha": hashlib.sha256(
                    spec.source.encode()).hexdigest(),
                "entries": list(spec.extra_entries),
            }
        return {
            "language": self.language,
            "source_sha": hashlib.sha256(self.source.encode()).hexdigest(),
            "entries": list(self.entries),
        }

    def key(self) -> str:
        """Content-addressed cache key (hex)."""
        material = {
            "schema": JOB_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "kind": self.kind,
            "program": self._program_identity(),
            "annotated": self._annotated(),
            "units": self.units,
            "issue_width": self.issue_width,
            "out_of_order": self.out_of_order,
            "max_cycles": self.max_cycles,
            "fast_path": self.fast_path,
            "jit": self.jit,
            "hardware": {
                "ring_hop": self.ring_hop,
                "arb_entries": self.arb_entries,
                "pred_history": self.pred_history,
                "pred_pattern": self.pred_pattern,
                "dcache_bank_kb": self.dcache_bank_kb,
            },
            "knobs": {
                "task_size": self.task_size,
                "loop_cut": self.loop_cut,
                "create_mask": self.create_mask,
            },
        }
        blob = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def describe(self) -> dict:
        """Human-readable job description stored next to each result."""
        data = asdict(self)
        data["entries"] = list(self.entries)
        if self.source is not None and len(data["source"]) > 200:
            data["source"] = data["source"][:200] + "..."
        return data

    def spec(self) -> dict:
        """Full, lossless JSON form (unlike :meth:`describe`, which
        truncates inline sources); inverse of :meth:`from_spec`. This
        is the wire format ``repro.server`` clients submit."""
        data = asdict(self)
        data["entries"] = list(self.entries)
        return data

    @classmethod
    def from_spec(cls, spec: dict) -> "SimJob":
        """Rebuild a job from :meth:`spec` output (unknown fields are
        rejected, so a malformed submission fails loudly)."""
        fields = dict(spec)
        fields["entries"] = tuple(fields.get("entries", ()))
        return cls(**fields)

    def label(self) -> str:
        name = self.workload or f"<inline {self.language}>"
        if self.kind == "scalar":
            return (f"{name}:scalar:{self.issue_width}w-"
                    f"{'ooo' if self.out_of_order else 'io'}")
        if self.kind == "multiscalar":
            return (f"{name}:ms:{self.units}u-{self.issue_width}w-"
                    f"{'ooo' if self.out_of_order else 'io'}")
        return f"{name}:count:{'multi' if self.annotated else 'scalar'}"

    def _annotated(self) -> bool:
        return self.kind == "multiscalar" or self.annotated

    # --------------------------------------------------------- execution

    def _build(self):
        """(program, expected output or None) for this job."""
        knobs = self.compiler_knobs()
        if self.workload is not None:
            spec = _workload_spec(self.workload)
            program = spec.multiscalar_program(knobs=knobs) \
                if self._annotated() else spec.scalar_program()
            return program, spec.expected_output
        if self.language == "asm":
            from repro.compiler import annotate_program
            from repro.isa import assemble

            program = assemble(self.source)
            if self._annotated():
                program = annotate_program(
                    program, task_entries=list(self.entries), knobs=knobs)
        else:
            from repro.minic import compile_and_annotate, compile_scalar

            if self._annotated():
                program = compile_and_annotate(
                    self.source, extra_entries=list(self.entries),
                    knobs=knobs)
            else:
                program = compile_scalar(self.source)
        return program, None

    def machine_config(self) -> MachineConfig:
        """The multiscalar :class:`~repro.config.MachineConfig` this job
        simulates: the paper's Section-5.1 machine with the job's
        hardware axes applied."""
        cfg = multiscalar_config(self.units, self.issue_width,
                                 self.out_of_order,
                                 fast_path=self.fast_path, jit=self.jit)
        cfg = _dc_replace(
            cfg,
            ring_hop_latency=self.ring_hop,
            memory=_dc_replace(cfg.memory,
                               arb_entries_per_bank=self.arb_entries,
                               dcache_bank_size=self.dcache_bank_kb * 1024),
            predictor=_dc_replace(cfg.predictor,
                                  history_entries=self.pred_history,
                                  pattern_entries=self.pred_pattern))
        return cfg

    def _verify(self, output: str, expected: str | None) -> None:
        if expected is not None and output != expected:
            raise SimulationMismatchError(
                f"{self.label()}: simulated output {output!r} does not "
                f"match expected {expected!r}")


# ------------------------------------------------------------ constructors

def scalar_job(name: str, issue_width: int = 1, out_of_order: bool = False,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               fast_path: bool = True, jit: bool = True) -> SimJob:
    """A scalar-baseline timing job for the named workload."""
    return SimJob(kind="scalar", workload=name, issue_width=issue_width,
                  out_of_order=out_of_order, max_cycles=max_cycles,
                  fast_path=fast_path, jit=jit)


def multiscalar_job(name: str, units: int, issue_width: int = 1,
                    out_of_order: bool = False,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    fast_path: bool = True, jit: bool = True,
                    ring_hop: int = 1, arb_entries: int = 256,
                    pred_history: int = 64, pred_pattern: int = 4096,
                    dcache_bank_kb: int = 8,
                    knobs: CompilerKnobs | None = None) -> SimJob:
    """A multiscalar timing job for the named workload."""
    knobs = knobs or CompilerKnobs()
    return SimJob(kind="multiscalar", workload=name, units=units,
                  issue_width=issue_width, out_of_order=out_of_order,
                  max_cycles=max_cycles, fast_path=fast_path, jit=jit,
                  ring_hop=ring_hop, arb_entries=arb_entries,
                  pred_history=pred_history, pred_pattern=pred_pattern,
                  dcache_bank_kb=dcache_bank_kb,
                  task_size=knobs.task_size, loop_cut=knobs.loop_cut,
                  create_mask=knobs.create_mask)


def count_job(name: str, annotated: bool) -> SimJob:
    """A functional dynamic-instruction-count job (no timing)."""
    return SimJob(kind="count", workload=name, annotated=annotated)


def _workload_spec(name: str):
    from repro.workloads import WORKLOADS

    return WORKLOADS[name]


# --------------------------------------------------------------- execution

def _checkpoint_manager(job: SimJob, checkpoints, attempt: int):
    """Build the (manager, keep) pair for a checkpointed timing job."""
    if checkpoints is None or job.kind == "count":
        return None
    from repro.resilience.checkpoint import CheckpointManager

    manager = CheckpointManager(checkpoints.directory, job.key(),
                                every=checkpoints.every)
    if attempt in checkpoints.kill_after_checkpoint_on_attempts:
        manager.die_after_capture = True
    return manager


def execute(job: SimJob, checkpoints=None, attempt: int = 0,
            progress=None) -> dict:
    """Run one job to completion, returning its JSON-able payload.

    With a :class:`~repro.resilience.checkpoint.CheckpointPolicy`, a
    timing job periodically persists its machine state and — if a
    checkpoint from a previous (crashed/killed) attempt survives —
    resumes from it instead of re-simulating from cycle 0. Either way
    the payload is bit-identical to an uncheckpointed run.

    ``progress`` (optional) is called as ``progress({"cycle": n})``
    whenever a checkpoint lands; the server daemon uses it as both a
    lease heartbeat and a client-visible progress event.
    """
    program, expected = job._build()
    manager = _checkpoint_manager(job, checkpoints, attempt)
    if manager is not None and progress is not None:
        manager.on_capture = \
            lambda cycle: progress({"cycle": cycle})
    if job.kind == "scalar":
        processor = ScalarProcessor(
            program, scalar_config(job.issue_width, job.out_of_order,
                                   fast_path=job.fast_path, jit=job.jit))
    elif job.kind == "multiscalar":
        processor = MultiscalarProcessor(program, job.machine_config())
    else:
        from repro.isa import FunctionalCPU

        cpu = FunctionalCPU(program)
        cpu.run()
        job._verify(cpu.output, expected)
        return {"type": "count", "count": cpu.instruction_count}
    if manager is not None:
        manager.resume(processor)
    result = processor.run(max_cycles=job.max_cycles, checkpointer=manager)
    job._verify(result.output, expected)
    if manager is not None and not checkpoints.keep:
        manager.discard()
    from repro.observability.metrics import collect_metrics

    return {"type": job.kind, "result": result.to_dict(),
            "metrics": collect_metrics(processor).to_dict()}


def result_from_payload(payload: dict):
    """Reconstruct the native result object from a stored payload."""
    if payload["type"] == "scalar":
        return ScalarResult.from_dict(payload["result"])
    if payload["type"] == "multiscalar":
        return MultiscalarResult.from_dict(payload["result"])
    if payload["type"] == "count":
        return int(payload["count"])
    raise ValueError(f"unknown payload type {payload['type']!r}")


def metrics_from_payload(payload: dict):
    """Reconstruct the run's MetricsRegistry, or ``None`` for payloads
    that predate metrics (old cache entries) or carry none (count
    jobs)."""
    data = payload.get("metrics")
    if data is None:
        return None
    from repro.observability.metrics import MetricsRegistry

    return MetricsRegistry.from_dict(data)
