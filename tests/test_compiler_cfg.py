"""Unit tests for CFG construction, summaries, and liveness."""

from repro.compiler import build_cfg, LivenessAnalysis
from repro.isa import assemble
from repro.isa.registers import RA

LOOP_WITH_CALL = """
main:   li $s0, 0
        li $s1, 10
loop:   move $a0, $s0
        jal helper
        add $s0, $s0, $v0
        addi $s1, $s1, -1
        bne $s1, $zero, loop
        halt
helper: add $v0, $a0, $a0
        jr $ra
"""


def test_blocks_and_edges():
    program = assemble("""
main:   li $t0, 1
        beq $t0, $zero, skip
        addi $t0, $t0, 1
skip:   halt
    """)
    cfg = build_cfg(program)
    starts = sorted(cfg.blocks)
    assert len(starts) == 3
    entry = cfg.blocks[program.entry]
    assert sorted(entry.successors) == sorted(
        [program.labels["skip"], program.entry + 8])


def test_call_is_straightline_edge():
    program = assemble(LOOP_WITH_CALL)
    cfg = build_cfg(program)
    jal_block = next(b for b in cfg.blocks.values()
                     if b.last.op.value == "jal")
    assert jal_block.successors == [jal_block.last.addr + 4]


def test_function_summary_def_use():
    program = assemble(LOOP_WITH_CALL)
    cfg = build_cfg(program)
    helper = cfg.summaries[program.labels["helper"]]
    assert 2 in helper.may_def       # $v0
    assert 4 in helper.may_use       # $a0
    assert 8 not in helper.may_def   # $t0 untouched


def test_recursive_function_summary_converges():
    program = assemble("""
main:   li $a0, 5
        jal fact
        halt
fact:   addi $sp, $sp, -8
        sw $ra, 0($sp)
        sw $a0, 4($sp)
        blez $a0, base
        addi $a0, $a0, -1
        jal fact
        lw $a0, 4($sp)
        mult $v0, $v0, $a0
        j out
base:   li $v0, 1
out:    lw $ra, 0($sp)
        addi $sp, $sp, 8
        jr $ra
    """)
    cfg = build_cfg(program)
    fact = cfg.summaries[program.labels["fact"]]
    assert 2 in fact.may_def    # $v0
    assert RA in fact.may_def   # recursion clobbers $ra
    assert 4 in fact.may_use


def test_call_defs_fold_into_instr_defs():
    program = assemble(LOOP_WITH_CALL)
    cfg = build_cfg(program)
    jal = next(i for i in program.instructions if i.op.value == "jal")
    defs = cfg.instr_defs(jal)
    assert 2 in defs and RA in defs


def test_loop_headers():
    program = assemble(LOOP_WITH_CALL)
    cfg = build_cfg(program)
    headers = cfg.loop_headers(program.entry)
    assert headers == {program.labels["loop"]}


def test_nested_loop_headers():
    program = assemble("""
main:   li $t0, 0
outer:  li $t1, 0
inner:  addi $t1, $t1, 1
        blt $t1, 3, inner
        addi $t0, $t0, 1
        blt $t0, 3, outer
        halt
    """)
    cfg = build_cfg(program)
    headers = cfg.loop_headers(program.entry)
    assert headers == {program.labels["outer"], program.labels["inner"]}


def test_liveness_dead_register_excluded():
    program = assemble("""
main:   li $t0, 5
        li $t1, 7
        add $t2, $t0, $t1
loop:   addi $t2, $t2, -1
        bne $t2, $zero, loop
        move $a0, $t2
        li $v0, 1
        syscall
        halt
    """)
    cfg = build_cfg(program)
    live = LivenessAnalysis(cfg, program.entry)
    loop = program.labels["loop"]
    assert 10 in live.live_at_block_entry(loop)   # $t2 live
    assert 8 not in live.live_at_block_entry(loop)  # $t0 dead in loop


def test_liveness_through_call_summary():
    program = assemble(LOOP_WITH_CALL)
    cfg = build_cfg(program)
    live = LivenessAnalysis(cfg, program.entry)
    loop = program.labels["loop"]
    live_at_loop = live.live_at_block_entry(loop)
    assert 16 in live_at_loop   # $s0 (accumulator)
    assert 17 in live_at_loop   # $s1 (counter)
