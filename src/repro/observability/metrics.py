"""The metrics registry: counters, gauges, and histograms.

One uniform, mergeable, JSON-round-trippable container for everything
the simulator counts, superseding the ad-hoc per-subsystem stat dicts
as the *aggregation* surface (the dataclass stats remain the hot-path
tally sites; :func:`collect_metrics` folds them into a registry after
a run). The registry serializes through the engine result envelope
(``payload["metrics"]``), so ``repro sweep`` can aggregate metrics
across cached runs without re-simulating — see
:func:`repro.engine.job.metrics_from_payload`.

Merge semantics: counters add, gauges keep the maximum (they record
peaks: peak ARB entries, cycle counts), histograms add bucket-wise.
Histograms use power-of-two buckets (bucket *k* holds values in
``[2^(k-1), 2^k)``; bucket 0 holds zero), which are deterministic and
merge without rebinning.
"""

from __future__ import annotations


class Histogram:
    """Power-of-two-bucketed histogram of non-negative integers."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        """Record one observation (negative values clamp to 0)."""
        value = max(0, int(value))
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's buckets into this one."""
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total

    def to_dict(self) -> dict:
        """JSON form: string bucket keys, sorted for stable dumps."""
        return {"buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())},
                "count": self.count, "total": self.total}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        hist = cls()
        hist.buckets = {int(k): int(v)
                        for k, v in data["buckets"].items()}
        hist.count = int(data["count"])
        hist.total = int(data["total"])
        return hist

    @staticmethod
    def bucket_label(bucket: int) -> str:
        """Human-readable value range covered by a bucket index."""
        if bucket == 0:
            return "0"
        return f"{1 << (bucket - 1)}..{(1 << bucket) - 1}"


class MetricsRegistry:
    """Named counters, gauges, and histograms (flat dotted names)."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` (a point-in-time or peak value)."""
        self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Aggregate another registry: counters add, gauges keep max,
        histograms merge bucket-wise."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None \
                else max(current, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)

    def to_dict(self) -> dict:
        """JSON-serializable form (sorted keys; inverse of
        :meth:`from_dict`)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.to_dict() for name, hist
                           in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        reg = cls()
        reg.counters = {str(k): int(v)
                        for k, v in data.get("counters", {}).items()}
        reg.gauges = dict(data.get("gauges", {}))
        reg.histograms = {str(k): Histogram.from_dict(v)
                          for k, v in data.get("histograms", {}).items()}
        return reg

    def render(self) -> str:
        """Plain-text table of every metric, grouped by kind."""
        lines = []
        if self.counters:
            lines.append("counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<34} {value:>14,}")
        if self.gauges:
            lines.append("gauges:")
            for name, value in sorted(self.gauges.items()):
                shown = f"{value:,.3f}" if isinstance(value, float) \
                    else f"{value:,}"
                lines.append(f"  {name:<34} {shown:>14}")
        if self.histograms:
            lines.append("histograms:")
            for name, hist in sorted(self.histograms.items()):
                lines.append(f"  {name}: n={hist.count} "
                             f"mean={hist.mean:.1f}")
                peak = max(hist.buckets.values(), default=1)
                for bucket, count in sorted(hist.buckets.items()):
                    bar = "#" * max(1, round(20 * count / peak))
                    lines.append(f"    {Histogram.bucket_label(bucket):>14} "
                                 f"{count:>8} {bar}")
        return "\n".join(lines) if lines else "(no metrics)"


def collect_metrics(processor) -> MetricsRegistry:
    """Fold a finished processor's stat objects into a registry.

    Accepts a ``MultiscalarProcessor`` or a ``ScalarProcessor``
    (duck-typed on the ``units`` attribute). Pure read: never touches
    simulation state, so it can run any time after (or during) a run.
    """
    reg = MetricsRegistry()
    reg.gauge("sim.cycles", processor.cycle)
    bus = processor.bus.stats
    reg.count("bus.requests", bus.requests)
    reg.count("bus.words", bus.words)
    reg.count("bus.busy_cycles", bus.busy_cycles)
    reg.count("bus.wait_cycles", bus.wait_cycles)
    dcache = processor.dcache.stats
    reg.count("dcache.accesses", dcache.accesses)
    reg.count("dcache.misses", dcache.misses)
    reg.count("dcache.bank_wait_cycles", dcache.bank_wait_cycles)

    units = getattr(processor, "units", None)
    if units is None:
        _collect_scalar(reg, processor)
    else:
        _collect_multiscalar(reg, processor, units)
    return reg


def _pipeline_counts(reg: MetricsRegistry, stats) -> None:
    reg.count("pipe.fetched", stats.fetched)
    reg.count("pipe.dispatched", stats.dispatched)
    reg.count("pipe.issued", stats.issued)
    reg.count("pipe.committed", stats.committed)
    reg.count("pipe.flushed", stats.flushed)
    reg.count("pipe.loads", stats.loads)
    reg.count("pipe.stores", stats.stores)


def _collect_scalar(reg: MetricsRegistry, processor) -> None:
    reg.count("icache.accesses", processor.icache.stats.accesses)
    reg.count("icache.misses", processor.icache.stats.misses)
    _pipeline_counts(reg, processor.pipeline.stats)
    for name, count in processor.stall_cycles.items():
        reg.count(f"stall.{name.lower()}", count)


def _collect_multiscalar(reg: MetricsRegistry, processor, units) -> None:
    reg.count("task.retired", processor.tasks_retired)
    reg.count("task.squashed", processor.tasks_squashed)
    reg.count("task.squash_mispredict", processor.squashes_mispredict)
    reg.count("task.squash_memory", processor.squashes_memory)
    reg.count("task.squash_arb", processor.squashes_arb)
    reg.count("sim.retired_instructions", processor.retired_instructions)
    reg.count("sim.squashed_instructions", processor.squashed_instructions)
    ring = processor.ring.stats
    reg.count("ring.sends", ring.sends)
    reg.count("ring.deliveries", ring.deliveries)
    reg.count("ring.dropped_stale", ring.dropped_stale)
    reg.count("ring.bandwidth_delay_cycles", ring.bandwidth_delay_cycles)
    arb = processor.arb.stats
    reg.count("arb.loads", arb.loads)
    reg.count("arb.stores", arb.stores)
    reg.count("arb.violations", arb.violations)
    reg.count("arb.forwards", arb.forwards)
    reg.count("arb.full_events", arb.full_events)
    reg.gauge("arb.peak_entries", arb.peak_entries)
    pred = processor.predictor.stats
    reg.count("predict.predictions", pred.predictions)
    reg.count("predict.validated", pred.validated)
    reg.count("predict.correct", pred.correct)
    for name, count in processor.distribution.as_dict().items():
        reg.count(f"cycles.{name}", count)
    for slot in units:
        reg.count("icache.accesses", slot.icache.stats.accesses)
        reg.count("icache.misses", slot.icache.stats.misses)
        _pipeline_counts(reg, slot.pipeline.stats)
        # Load imbalance across the unit queue: one observation per
        # unit of the instructions it committed.
        reg.observe("unit.committed", slot.pipeline.stats.committed)
