"""Functional (architectural) execution of programs.

:class:`FunctionalCPU` executes a program one instruction at a time with
no timing model. It defines the reference semantics: every timing
simulator in this repository (the scalar pipeline and the multiscalar
processor) must finish with the same final register file, memory image,
and program output. It is also used to measure the dynamic instruction
counts reported in Table 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import semantics
from repro.isa.instruction import Instruction
from repro.isa.memory_image import SparseMemory, u32
from repro.isa.opcodes import Kind, Op
from repro.isa.program import Program, STACK_TOP
from repro.isa.registers import (
    FP_REG_BASE,
    FPCOND_REG,
    NUM_UNIFIED_REGS,
    RA,
    SP,
    V0,
    A0,
)

#: Syscall numbers (in $v0), loosely following the SPIM conventions.
SYS_PRINT_INT = 1
SYS_PRINT_STRING = 4
SYS_PRINT_CHAR = 11
SYS_PRINT_DOUBLE = 3
SYS_EXIT = 10


class ExecutionError(Exception):
    """Raised on architectural errors (bad PC, runaway execution)."""


@dataclass
class MachineState:
    """Complete architectural state of the machine."""

    memory: SparseMemory
    pc: int = 0
    regs: list = field(default_factory=lambda: _fresh_regs())
    halted: bool = False
    output: list[str] = field(default_factory=list)

    def read_reg(self, reg: int):
        return self.regs[reg]

    def write_reg(self, reg: int, value) -> None:
        if reg != 0:
            self.regs[reg] = value

    def output_text(self) -> str:
        return "".join(self.output)


def _fresh_regs() -> list:
    regs: list = [0] * NUM_UNIFIED_REGS
    for i in range(FP_REG_BASE, FP_REG_BASE + 32):
        regs[i] = 0.0
    regs[SP] = STACK_TOP
    return regs


def next_pc(instr: Instruction, state_read, pc: int) -> int:
    """Architectural next-PC of an instruction.

    ``state_read`` maps unified register index -> value for the
    instruction's sources. Shared with the timing models so control flow
    resolves identically everywhere.
    """
    kind = instr.kind
    if kind is Kind.BRANCH:
        return instr.target if semantics.branch_taken(instr, state_read) \
            else pc + 4
    if kind is Kind.JUMP:
        return instr.target
    if kind is Kind.CALL:
        if instr.op is Op.JAL:
            return instr.target
        return u32(state_read[instr.rs])  # jalr
    if kind is Kind.JUMP_REG:
        return u32(state_read[instr.rs])
    return pc + 4


class FunctionalCPU:
    """Single-stepping architectural simulator.

    Parameters
    ----------
    program:
        The program image to run. The data image is copied, so a CPU
        never mutates the program.
    trace:
        When true, keeps a list of executed (pc, instruction) pairs in
        :attr:`trace_log` (expensive; tests only).
    """

    def __init__(self, program: Program, trace: bool = False) -> None:
        self.program = program
        self.state = MachineState(memory=program.initial_memory(),
                                  pc=program.entry)
        self.instruction_count = 0
        self.trace = trace
        self.trace_log: list[tuple[int, Instruction]] = []

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction."""
        state = self.state
        if state.halted:
            return
        instr = self.program.instr_at(state.pc)
        if instr is None:
            raise ExecutionError(f"PC outside text segment: {state.pc:#x}")
        if self.trace:
            self.trace_log.append((state.pc, instr))
        self.instruction_count += 1
        srcs = {r: state.regs[r] for r in instr.src_regs()}
        kind = instr.kind
        new_pc = state.pc + 4
        if kind is Kind.ALU:
            if instr.op is not Op.NOP:
                dsts = instr.dst_regs()
                if dsts:
                    value = semantics.evaluate_alu(instr, srcs)
                    state.write_reg(dsts[0], value)
        elif kind is Kind.LOAD:
            addr = semantics.effective_addr(instr, srcs)
            value = semantics.do_load(instr.op, state.memory, addr)
            state.write_reg(instr.dst_regs()[0], value)
        elif kind is Kind.STORE:
            addr = semantics.effective_addr(instr, srcs)
            value = state.regs[instr.ft if instr.ft is not None else instr.rt]
            semantics.do_store(instr.op, state.memory, addr, value)
        elif kind in (Kind.BRANCH, Kind.JUMP, Kind.CALL, Kind.JUMP_REG):
            new_pc = next_pc(instr, srcs, state.pc)
            if kind is Kind.CALL:
                state.write_reg(RA, u32(state.pc + 4))
        elif kind is Kind.SYSCALL:
            self._syscall()
        elif kind is Kind.HALT:
            state.halted = True
        elif kind is Kind.RELEASE:
            pass  # architecturally a no-op; meaningful only to the ring
        else:  # pragma: no cover - exhaustive over Kind
            raise ExecutionError(f"unhandled kind {kind}")
        state.pc = new_pc

    def _syscall(self) -> None:
        state = self.state
        code = state.regs[V0]
        arg = state.regs[A0]
        if code == SYS_PRINT_INT:
            state.output.append(str(u32(arg) - 0x100000000
                                    if arg >= 0x80000000 else arg))
        elif code == SYS_PRINT_STRING:
            state.output.append(state.memory.read_cstring(arg))
        elif code == SYS_PRINT_CHAR:
            state.output.append(chr(arg & 0xFF))
        elif code == SYS_PRINT_DOUBLE:
            state.output.append(repr(state.regs[FP_REG_BASE + 12]))
        elif code == SYS_EXIT:
            state.halted = True
        else:
            raise ExecutionError(f"unknown syscall {code}")

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 50_000_000) -> MachineState:
        """Run to completion (HALT or exit syscall).

        Raises :class:`ExecutionError` if the instruction budget is
        exceeded, which almost always indicates an infinite loop in the
        program under test.
        """
        state = self.state
        while not state.halted:
            self.step()
            if self.instruction_count > max_instructions:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions at "
                    f"pc={state.pc:#x} (infinite loop?)")
        return state

    # Convenience accessors used heavily by tests -----------------------

    def reg(self, index: int):
        return self.state.regs[index]

    @property
    def output(self) -> str:
        return self.state.output_text()


def run_program(program: Program,
                max_instructions: int = 50_000_000) -> FunctionalCPU:
    """Assemble-and-go helper: run a program functionally to completion."""
    cpu = FunctionalCPU(program)
    cpu.run(max_instructions)
    return cpu


# Re-export for annotate/liveness passes that need fpcond's index.
__all__ = [
    "ExecutionError",
    "FunctionalCPU",
    "MachineState",
    "FPCOND_REG",
    "next_pc",
    "run_program",
]
