"""A direct-mapped, timing-only cache."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DirectMappedCache:
    """Tag store of a direct-mapped cache.

    ``probe`` reports whether an address currently hits; ``touch``
    performs an access (allocating the block on a miss) and reports
    whether it hit. Writes allocate like reads (write-allocate,
    write-back is irrelevant for a timing-only model because all misses
    cost one block transfer on the shared bus).
    """

    def __init__(self, size: int, block_size: int) -> None:
        if size % block_size:
            raise ValueError("cache size must be a multiple of block size")
        self.block_size = block_size
        self.num_sets = size // block_size
        self._block_bits = block_size.bit_length() - 1
        if 1 << self._block_bits != block_size:
            raise ValueError("block size must be a power of two")
        self._tags: list[int | None] = [None] * self.num_sets
        self.stats = CacheStats()

    def _index_tag(self, addr: int) -> tuple[int, int]:
        block = addr >> self._block_bits
        return block % self.num_sets, block // self.num_sets

    def probe(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return self._tags[index] == tag

    def touch(self, addr: int) -> bool:
        """Access ``addr``; allocate on miss. Returns True on a hit."""
        index, tag = self._index_tag(addr)
        self.stats.accesses += 1
        if self._tags[index] == tag:
            return True
        self.stats.misses += 1
        self._tags[index] = tag
        return False

    def invalidate_all(self) -> None:
        self._tags = [None] * self.num_sets

    def state_dict(self) -> dict:
        return {"tags": list(self._tags), "stats": asdict(self.stats)}

    def load_state(self, state: dict) -> None:
        self._tags = list(state["tags"])
        self.stats = CacheStats(**state["stats"])

    @property
    def words_per_block(self) -> int:
        return self.block_size // 4
