"""Design-space autopilot: search configs + compiler knobs, report
Pareto frontiers.

``repro explore`` closes the loop the paper leaves open: given the
simulator (``repro.core``), the compiler's partitioning knobs
(``repro.compiler``), and the content-addressed job engine
(``repro.engine``), *which* machine + compiler configuration is worth
its area? The package is four small layers:

* :mod:`repro.explore.space` — the axes and :class:`DesignPoint`;
* :mod:`repro.explore.cost` — the deterministic hardware-cost model;
* :mod:`repro.explore.evaluate` — points -> cycles via the shared
  cache, locally or through ``repro serve``;
* :mod:`repro.explore.search` — the seeded probe/explore/exploit loop;
* :mod:`repro.explore.report` — deterministic JSON/Markdown reports.

Every evaluated point is an ordinary :class:`~repro.engine.job.SimJob`,
so explore shares its cache with ``repro sweep`` and search resumption
is free. The whole run is a pure function of (seed, budget, workloads,
simulator version); see ``docs/EXPLORE.md`` for the reproducibility
contract.
"""

from repro.explore.cost import cost_breakdown, hardware_cost
from repro.explore.evaluate import (
    LocalEvaluator,
    PointResult,
    ServerEvaluator,
)
from repro.explore.report import (
    build_report,
    render_markdown,
    render_terminal,
    validate_report,
    write_report,
)
from repro.explore.search import (
    ExploreRequest,
    ExploreSummary,
    WorkloadSearch,
    pareto_frontier,
    run_explore,
    search_workload,
)
from repro.explore.space import (
    AXES,
    DesignPoint,
    default_point,
    knob_probes,
    mutate,
    sample,
    space_size,
)

__all__ = [
    "AXES",
    "DesignPoint",
    "ExploreRequest",
    "ExploreSummary",
    "LocalEvaluator",
    "PointResult",
    "ServerEvaluator",
    "WorkloadSearch",
    "build_report",
    "cost_breakdown",
    "default_point",
    "hardware_cost",
    "knob_probes",
    "mutate",
    "pareto_frontier",
    "render_markdown",
    "render_terminal",
    "run_explore",
    "sample",
    "search_workload",
    "space_size",
    "validate_report",
    "write_report",
]
