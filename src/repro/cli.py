"""Command-line interface for the multiscalar reproduction.

Subcommands:

* ``run FILE``       — run a program (``.mc`` MinC or ``.s``/``.asm``
  assembly) on the scalar baseline or a multiscalar machine;
* ``compile FILE``   — compile MinC to assembly text;
* ``disasm FILE``    — print the annotated listing and task descriptors;
* ``workloads``      — list or run the paper's benchmark stand-ins;
* ``tables N``       — regenerate a table of the paper's evaluation;
* ``fuzz``           — differential fuzzing: run seeded random programs
  on every backend and diff the results (exit 1 on divergence).

Examples::

    python -m repro run program.mc --units 8 --timeline
    python -m repro run kernel.s --entries loop --issue 2 --ooo
    python -m repro workloads --run cmp --units 4
    python -m repro tables 2
    python -m repro fuzz --seed 7 --budget 200
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import annotate_program
from repro.config import multiscalar_config, scalar_config
from repro.core import MultiscalarProcessor, ScalarProcessor
from repro.core.tracer import TaskTracer
from repro.isa import Program, assemble
from repro.minic import compile_and_annotate, compile_minic, compile_scalar


def _load_program(path: str, multiscalar: bool,
                  entries: list[str], auto_loops: bool) -> Program:
    text = Path(path).read_text()
    if path.endswith(".mc") or path.endswith(".minc"):
        if multiscalar:
            return compile_and_annotate(text, path, extra_entries=entries,
                                        auto_loops=auto_loops)
        return compile_scalar(text, path)
    program = assemble(text, path)
    if multiscalar:
        return annotate_program(program, task_entries=entries,
                                auto_loops=auto_loops)
    return program


def cmd_run(args: argparse.Namespace) -> int:
    multiscalar = args.units > 1 or args.multiscalar
    program = _load_program(args.file, multiscalar, args.entries,
                            args.auto_loops)
    if multiscalar:
        config = multiscalar_config(args.units, args.issue, args.ooo)
        processor = MultiscalarProcessor(program, config)
        tracer = TaskTracer().attach(processor) if args.timeline else None
        result = processor.run(max_cycles=args.max_cycles)
        print(result.output, end="")
        if result.output and not result.output.endswith("\n"):
            print()
        print(f"-- {result.cycles} cycles, {result.instructions} "
              f"instructions retired (IPC {result.ipc:.2f})",
              file=sys.stderr)
        print(f"-- tasks: {result.tasks_retired} retired, "
              f"{result.tasks_squashed} squashed "
              f"(mispredict {result.squashes_mispredict}, "
              f"memory {result.squashes_memory}, "
              f"ARB {result.squashes_arb}); "
              f"prediction {result.prediction_accuracy:.1%}",
              file=sys.stderr)
        if args.stats:
            for key, value in result.distribution.as_dict().items():
                print(f"--   {key}: {value}", file=sys.stderr)
        if tracer is not None:
            print(tracer.render(), file=sys.stderr)
            print("-- " + tracer.summary(), file=sys.stderr)
    else:
        config = scalar_config(args.issue, args.ooo)
        result = ScalarProcessor(program, config).run(
            max_cycles=args.max_cycles)
        print(result.output, end="")
        if result.output and not result.output.endswith("\n"):
            print()
        print(f"-- {result.cycles} cycles, {result.instructions} "
              f"instructions (IPC {result.ipc:.2f})", file=sys.stderr)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    unit = compile_minic(Path(args.file).read_text(), args.file)
    output = unit.asm
    if unit.task_labels:
        output += "\n# parallel task entries: " \
            + ", ".join(unit.task_labels) + "\n"
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(args.file, args.multiscalar, args.entries,
                            args.auto_loops)
    print(program.listing())
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import WORKLOADS

    if not args.run:
        for name, spec in WORKLOADS.items():
            print(f"{name:10} {spec.paper_benchmark:28} "
                  f"{spec.description}")
        return 0
    spec = WORKLOADS[args.run]
    scalar = ScalarProcessor(spec.scalar_program(), scalar_config()).run()
    processor = MultiscalarProcessor(spec.multiscalar_program(),
                                     multiscalar_config(args.units))
    result = processor.run()
    assert result.output == spec.expected_output
    print(f"{args.run}: scalar {scalar.cycles} cycles, "
          f"{args.units}-unit multiscalar {result.cycles} cycles "
          f"(speedup {scalar.cycles / result.cycles:.2f}x, "
          f"prediction {result.prediction_accuracy:.1%})")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.harness import (
        format_table1,
        format_table2,
        format_table3,
        table2_rows,
        table3_rows,
        table4_rows,
    )

    if args.number == 1:
        print(format_table1())
    elif args.number == 2:
        print(format_table2(table2_rows()))
    elif args.number == 3:
        print(format_table3(table3_rows(args.names or None)))
    elif args.number == 4:
        print(format_table3(table4_rows(args.names or None),
                            out_of_order=True))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import generate_report

    text = generate_report(quick=args.quick)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.difftest import FuzzCampaign, inject_opcode_bug
    from repro.difftest.generator import generator_for
    from repro.isa.opcodes import Op

    try:
        for language in args.languages:
            generator_for(language)
        campaign = FuzzCampaign(
            seed=args.seed, budget=args.budget,
            languages=tuple(args.languages),
            units=tuple(args.units), widths=tuple(args.widths),
            orders=(False, True) if args.ooo == "both"
            else (args.ooo == "ooo",),
            max_shrink_checks=args.max_shrink_checks,
            progress=lambda message: print(f"fuzz: {message}",
                                           file=sys.stderr))
        if args.self_test and args.self_test.upper() not in Op.__members__:
            raise ValueError(
                f"unknown opcode {args.self_test!r} for --self-test")
    except ValueError as error:
        print(f"repro fuzz: error: {error}", file=sys.stderr)
        return 2
    if args.self_test:
        # Plant a semantics bug in the multiscalar backend only and
        # demand the campaign catches it — a check that the oracle
        # itself still has teeth.
        with inject_opcode_bug(Op[args.self_test.upper()]):
            result = campaign.run()
        print(result.render())
        if result.ok:
            print("fuzz: self-test FAILED -- injected "
                  f"{args.self_test} bug went undetected", file=sys.stderr)
            return 1
        print(f"fuzz: self-test ok -- injected {args.self_test} bug "
              "was caught and shrunk", file=sys.stderr)
        return 0
    result = campaign.run()
    print(result.render())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiscalar Processors (ISCA 1995) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_flags(p, with_units=True):
        if with_units:
            p.add_argument("--units", type=int, default=1,
                           help="processing units (>1 implies multiscalar)")
        p.add_argument("--issue", type=int, default=1, choices=(1, 2))
        p.add_argument("--ooo", action="store_true",
                       help="out-of-order issue")
        p.add_argument("--multiscalar", action="store_true",
                       help="force multiscalar annotation even at 1 unit")
        p.add_argument("--entries", type=lambda s: s.split(","),
                       default=[], help="extra task-entry labels")
        p.add_argument("--auto-loops", action="store_true",
                       help="make every loop header a task entry")

    run = sub.add_parser("run", help="run a .mc or .s program")
    run.add_argument("file")
    add_machine_flags(run)
    run.add_argument("--timeline", action="store_true",
                     help="print the per-unit task timeline")
    run.add_argument("--stats", action="store_true",
                     help="print the cycle-distribution taxonomy")
    run.add_argument("--max-cycles", type=int, default=20_000_000)
    run.set_defaults(fn=cmd_run)

    comp = sub.add_parser("compile", help="compile MinC to assembly")
    comp.add_argument("file")
    comp.add_argument("-o", "--output")
    comp.set_defaults(fn=cmd_compile)

    dis = sub.add_parser("disasm", help="print an annotated listing")
    dis.add_argument("file")
    add_machine_flags(dis, with_units=False)
    dis.set_defaults(fn=cmd_disasm)

    wl = sub.add_parser("workloads", help="list or run benchmark kernels")
    wl.add_argument("--run", help="workload name to run")
    wl.add_argument("--units", type=int, default=8)
    wl.set_defaults(fn=cmd_workloads)

    tables = sub.add_parser("tables", help="regenerate a paper table")
    tables.add_argument("number", type=int, choices=(1, 2, 3, 4))
    tables.add_argument("--names", type=lambda s: s.split(","),
                        default=None, help="restrict to these workloads")
    tables.set_defaults(fn=cmd_tables)

    report = sub.add_parser(
        "report", help="run the whole evaluation, write a report")
    report.add_argument("-o", "--output", default=None)
    report.add_argument("--quick", action="store_true",
                        help="three representative workloads only")
    report.set_defaults(fn=cmd_report)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing across all backends")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (same seed, same programs)")
    fuzz.add_argument("--budget", type=int, default=100,
                      help="number of generated programs to run")
    fuzz.add_argument("--languages", type=lambda s: s.split(","),
                      default=["asm", "minic"],
                      help="program generators to use (asm,minic)")
    fuzz.add_argument("--units", type=lambda s: [int(u) for u in
                                                 s.split(",")],
                      default=[1, 2, 4, 8],
                      help="multiscalar unit counts to cover")
    fuzz.add_argument("--widths", type=lambda s: [int(w) for w in
                                                  s.split(",")],
                      default=[1, 2], help="issue widths to cover")
    fuzz.add_argument("--ooo", choices=("io", "ooo", "both"),
                      default="both", help="issue orders to cover")
    fuzz.add_argument("--max-shrink-checks", type=int, default=400,
                      help="delta-debugging budget per divergence")
    fuzz.add_argument("--self-test", metavar="OP", default=None,
                      help="inject a semantics bug for this opcode into "
                           "the multiscalar backend and require the "
                           "campaign to catch it (e.g. --self-test xor)")
    fuzz.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
