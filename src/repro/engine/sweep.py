"""Grid sweeps: shard a workload × configuration grid across workers.

A sweep expands ``workloads × widths × orders`` into one scalar
baseline job per (workload, width, order) plus one multiscalar job per
requested unit count, then runs the grid through the persistent store
and the fault-tolerant pool:

* jobs whose key is already in the store are *hits* and never dispatch;
* misses are sharded across ``jobs`` worker processes, and fresh
  payloads are persisted by the parent (workers never touch the store,
  so there is exactly one writer);
* a job that fails (mismatch, timeout after retries, dead workers) is
  counted and reported, but never takes the sweep down.

The summary renders the same speedup numbers as the serial harness —
``scalar.cycles / multiscalar.cycles`` per cell — plus the engine's
cache and fault accounting. :func:`run_sweep_via_server` runs the
identical grid as a thin HTTP client of a ``repro serve`` instance
instead of a local pool — same keys, same table, shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.job import (
    SimJob,
    execute,
    metrics_from_payload,
    multiscalar_job,
    result_from_payload,
    scalar_job,
)
from repro.engine.scheduler import JobOutcome, PoolJob, WorkerPool
from repro.engine.store import ResultStore
from repro.resilience.checkpoint import CheckpointPolicy


@dataclass(frozen=True)
class SweepRequest:
    workloads: tuple[str, ...]
    units: tuple[int, ...] = (4, 8)
    widths: tuple[int, ...] = (1,)
    orders: tuple[bool, ...] = (False,)
    jobs: int = 1
    timeout: float = 600.0
    retries: int = 2
    backoff: float = 0.25
    use_cache: bool = True
    self_test: bool = False        # kill one worker mid-job, require retry
    max_cycles: int = 20_000_000
    fast_path: bool = True         # False: reference per-cycle simulator
    jit: bool = True               # False: fast path without the trace-JIT
    #: Simulated cycles between worker checkpoints (timing jobs only);
    #: long jobs killed mid-run resume from the last good checkpoint.
    checkpoint_every: int = 2_000_000


@dataclass
class SweepCell:
    """One multiscalar grid point joined with its scalar baseline."""

    workload: str
    units: int
    issue_width: int
    out_of_order: bool
    cycles: int | None = None
    speedup: float | None = None
    prediction_accuracy: float | None = None
    error: str = ""


@dataclass
class SweepSummary:
    request: SweepRequest
    cells: list[SweepCell] = field(default_factory=list)
    scalar_cycles: dict[tuple[str, int, bool], int] = \
        field(default_factory=dict)
    total_jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    failures: int = 0
    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    errors: list[str] = field(default_factory=list)
    #: Ctrl-C cut the sweep short: completed cells are still tabulated
    #: and persisted, unfinished jobs read "interrupted".
    interrupted: bool = False
    #: Per-run MetricsRegistry payloads merged across the whole grid
    #: (cache hits and fresh runs alike); ``None`` until tabulation, or
    #: when no payload carried metrics (pre-metrics cache entries).
    metrics: "object | None" = None
    #: Payloads that carried no metrics (pre-metrics cache entries and
    #: count jobs) — surfaced so a ``--metrics`` reader knows the merged
    #: registry under-counts instead of silently missing cells.
    cells_without_metrics: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def render(self) -> str:
        req = self.request
        lines = [
            f"sweep: {len(req.workloads)} workloads x "
            f"units {{{','.join(map(str, req.units))}}} x "
            f"widths {{{','.join(map(str, req.widths))}}} x "
            f"orders {{{','.join('ooo' if o else 'io' for o in req.orders)}}}"
            f" -- {self.total_jobs} jobs",
        ]
        header = (f"{'workload':10} {'width':5} {'order':5} "
                  f"{'scalar-cyc':>10}")
        for units in req.units:
            header += f" {f'{units}u speedup':>12} {f'{units}u pred':>8}"
        lines.append(header)
        for name in req.workloads:
            for width in req.widths:
                for ooo in req.orders:
                    scalar = self.scalar_cycles.get((name, width, ooo))
                    row = (f"{name:10} {width:5} "
                           f"{'ooo' if ooo else 'io':5} "
                           f"{scalar if scalar is not None else '-':>10}")
                    for units in req.units:
                        cell = self._cell(name, units, width, ooo)
                        if cell is None or cell.speedup is None:
                            row += f" {'-':>12} {'-':>8}"
                        else:
                            row += (f" {cell.speedup:>12.2f}"
                                    f" {cell.prediction_accuracy:>7.1f}%")
                    lines.append(row)
        lines.append(
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"(hit rate {100.0 * self.hit_rate:.1f}%); "
            f"{self.failures} failures, {self.retries} retries, "
            f"{self.worker_deaths} worker deaths, "
            f"{self.timeouts} timeouts")
        if self.cells_without_metrics:
            lines.append(f"metrics: {self.cells_without_metrics} payloads "
                         "without metrics (pre-metrics cache entries)")
        if self.interrupted:
            lines.append("sweep interrupted: partial results above were "
                         "flushed; unfinished jobs read 'interrupted'")
        for error in self.errors:
            lines.append(f"  failed: {error}")
        return "\n".join(lines)

    def _cell(self, name: str, units: int, width: int,
              ooo: bool) -> SweepCell | None:
        for cell in self.cells:
            if (cell.workload, cell.units, cell.issue_width,
                    cell.out_of_order) == (name, units, width, ooo):
                return cell
        return None


def build_grid(request: SweepRequest) -> list[SimJob]:
    """Expand a sweep request into its (deduplicated) job list."""
    grid: list[SimJob] = []
    for name in request.workloads:
        for width in request.widths:
            for ooo in request.orders:
                grid.append(scalar_job(name, width, ooo,
                                       max_cycles=request.max_cycles,
                                       fast_path=request.fast_path,
                                       jit=request.jit))
                for units in request.units:
                    grid.append(multiscalar_job(
                        name, units, width, ooo,
                        max_cycles=request.max_cycles,
                        fast_path=request.fast_path,
                        jit=request.jit))
    seen: set[str] = set()
    unique = []
    for job in grid:
        if job.key() not in seen:
            seen.add(job.key())
            unique.append(job)
    return unique


def _pool_entrypoint(payload, attempt: int) -> dict:
    """Module-level worker entrypoint (picklable under any start
    method). ``payload`` is a bare :class:`SimJob` or a
    ``(SimJob, CheckpointPolicy)`` pair; returns the job's JSON-able
    payload."""
    if isinstance(payload, tuple):
        job, policy = payload
        return execute(job, checkpoints=policy, attempt=attempt)
    return execute(payload)


def run_sweep(request: SweepRequest, store: ResultStore | None,
              progress=None, faults: dict[str, dict] | None = None
              ) -> SweepSummary:
    """Run a sweep grid through the store and the worker pool.

    ``faults`` (chaos harness) maps job keys to injections:
    ``{"kill_on_attempts": (...)}`` SIGKILLs the worker mid-job on
    those attempts, ``{"kill_after_checkpoint": (...)}`` kills it right
    after its first durable checkpoint. Faulted keys always bypass the
    cache read so the injection actually runs.
    """
    progress = progress or (lambda message: None)
    faults = dict(faults or {})
    grid = build_grid(request)
    summary = SweepSummary(request=request, total_jobs=len(grid))
    by_key = {job.key(): job for job in grid}
    payloads: dict[str, dict] = {}

    # Self-test: the first multiscalar job must survive a SIGKILLed
    # worker mid-run; it bypasses the read path so it always dispatches.
    if request.self_test:
        for job in grid:
            if job.kind == "multiscalar":
                faults.setdefault(job.key(), {}) \
                    .setdefault("kill_on_attempts", (0,))
                break

    policy = None
    if store is not None:
        policy = CheckpointPolicy(directory=str(store.root / "ckpt"),
                                  every=request.checkpoint_every)

    to_run: list[PoolJob] = []
    for job in grid:
        key = job.key()
        fault = faults.get(key)
        payload = None if (store is None or fault is not None) \
            else store.get(key)
        if payload is not None:
            summary.cache_hits += 1
            payloads[key] = payload
            continue
        summary.cache_misses += 1
        job_policy = policy
        if policy is not None and fault is not None \
                and fault.get("kill_after_checkpoint"):
            job_policy = CheckpointPolicy(
                directory=policy.directory, every=policy.every,
                kill_after_checkpoint_on_attempts=tuple(
                    fault["kill_after_checkpoint"]))
        to_run.append(PoolJob(
            job_id=key,
            payload=job if job_policy is None else (job, job_policy),
            kill_on_attempts=tuple(
                fault.get("kill_on_attempts", ())) if fault else ()))
    if to_run:
        progress(f"{summary.cache_hits} cached, "
                 f"{len(to_run)} jobs to run on {request.jobs} workers")
    pool = WorkerPool(_pool_entrypoint, jobs=request.jobs,
                      timeout=request.timeout, retries=request.retries,
                      backoff=request.backoff, progress=progress)
    outcomes = pool.run(to_run)
    summary.interrupted = pool.interrupted
    for key, outcome in outcomes.items():
        summary.retries += outcome.retries
        summary.worker_deaths += outcome.worker_deaths
        summary.timeouts += outcome.timeouts
        if outcome.ok:
            payloads[key] = outcome.value
            if store is not None:
                store.put(key, outcome.value, job=by_key[key].describe())
        else:
            summary.failures += 1
            summary.errors.append(f"{by_key[key].label()}: {outcome.error}")
    _tabulate(summary, by_key, payloads)
    if store is not None:
        store.flush_counters()
    return summary


def _tabulate(summary: SweepSummary, by_key: dict[str, SimJob],
              payloads: dict[str, dict]) -> None:
    request = summary.request
    results = {key: result_from_payload(payload)
               for key, payload in payloads.items()}
    for payload in payloads.values():
        registry = metrics_from_payload(payload)
        if registry is None:
            summary.cells_without_metrics += 1
            continue
        if summary.metrics is None:
            summary.metrics = registry
        else:
            summary.metrics.merge(registry)
    scalar_keys = {(job.workload, job.issue_width, job.out_of_order): key
                   for key, job in by_key.items() if job.kind == "scalar"}
    for name in request.workloads:
        for width in request.widths:
            for ooo in request.orders:
                scalar_key = scalar_keys.get((name, width, ooo))
                scalar = results.get(scalar_key)
                if scalar is not None:
                    summary.scalar_cycles[(name, width, ooo)] = scalar.cycles
                for units in request.units:
                    cell = SweepCell(workload=name, units=units,
                                     issue_width=width, out_of_order=ooo)
                    key = multiscalar_job(
                        name, units, width, ooo,
                        max_cycles=request.max_cycles,
                        fast_path=request.fast_path,
                        jit=request.jit).key()
                    multi = results.get(key)
                    if multi is None:
                        cell.error = "job failed"
                    else:
                        cell.cycles = multi.cycles
                        cell.prediction_accuracy = \
                            100.0 * multi.prediction_accuracy
                        if scalar is not None:
                            cell.speedup = scalar.cycles / multi.cycles
                    summary.cells.append(cell)


def run_sweep_via_server(request: SweepRequest, url: str,
                         progress=None,
                         client_id: str = "sweep") -> SweepSummary:
    """Run the same sweep grid as a thin client of ``repro serve``.

    Every grid job is submitted as a ``sim`` envelope built from
    :meth:`SimJob.spec`, so the server's content-addressed keys are
    exactly the local ones — whatever a standalone sweep already
    cached on that server's store is an instant hit, and the summary's
    hit/retry/death accounting comes from the server's job records.
    ``self_test`` submits the first multiscalar job with a
    kill-the-worker fault (the server must be running ``--chaos``).
    """
    from repro.server.client import ServerClient, ServerError

    progress = progress or (lambda message: None)
    client = ServerClient(url, client_id=client_id)
    grid = build_grid(request)
    summary = SweepSummary(request=request, total_jobs=len(grid))
    by_key = {job.key(): job for job in grid}

    faults: dict[str, dict] = {}
    if request.self_test:
        for job in grid:
            if job.kind == "multiscalar":
                faults[job.key()] = {"kill_on_attempts": [0]}
                break
    keys: list[str] = []
    for job in grid:
        key = job.key()
        try:
            answer = client.submit({"type": "sim", "spec": job.spec()},
                                   priority="batch",
                                   fresh=not request.use_cache,
                                   fault=faults.get(key))
        except ServerError as exc:
            if exc.status == 0:  # unreachable, not a rejected job
                raise
            summary.failures += 1
            summary.errors.append(f"{job.label()}: {exc}")
            continue
        if answer.get("cached"):
            summary.cache_hits += 1
        else:
            summary.cache_misses += 1
        keys.append(answer["key"])
    progress(f"{summary.cache_hits} cached on the server, "
             f"{summary.cache_misses} submitted to {url}")
    records = client.wait(
        keys, timeout=request.timeout * max(1, len(keys)),
        progress=lambda done, total: progress(f"{done}/{total} jobs "
                                              "settled"))
    payloads: dict[str, dict] = {}
    for key in keys:
        record = records[key]
        summary.retries += record.get("requeues", 0)
        summary.worker_deaths += record.get("worker_deaths", 0)
        if record["status"] == "done":
            payload = client.result(key)
            if payload is not None:
                payloads[key] = payload
                continue
        summary.failures += 1
        label = by_key[key].label() if key in by_key else key[:12]
        summary.errors.append(
            f"{label}: {record.get('error') or 'no result'}")
    _tabulate(summary, by_key, payloads)
    return summary


def render_timelines(request: SweepRequest, width: int = 72) -> str:
    """Re-run the widest configuration of each workload with a
    :class:`~repro.core.tracer.TaskTracer` attached and render the
    per-unit task timelines (serial; timing only, results ignored)."""
    from repro.config import multiscalar_config
    from repro.core.processor import MultiscalarProcessor
    from repro.core.tracer import TaskTracer
    from repro.workloads import WORKLOADS

    units = max(request.units) if request.units else 4
    lines = []
    for name in request.workloads:
        spec = WORKLOADS[name]
        processor = MultiscalarProcessor(
            spec.multiscalar_program(),
            multiscalar_config(units, max(request.widths),
                               request.orders[-1]))
        tracer = TaskTracer().attach(processor)
        processor.run(max_cycles=request.max_cycles)
        lines.append(f"-- {name} ({units} units) --")
        lines.append(tracer.render(width=width))
        lines.append(tracer.summary())
    return "\n".join(lines)
