"""The observability layer's contracts.

Four things are pinned here:

* **Stream identity** — the structured event stream is part of the
  simulator's deterministic surface: fast path vs reference, and a
  checkpoint/resume boundary, must produce bit-identical streams.
* **Export** — ``chrome_trace`` output validates against the
  trace-event schema, names every track, and serializes to identical
  bytes run over run; a committed golden file pins the exact trace of
  a tiny hand-annotated program.
* **Metrics** — histograms/registries merge with the documented
  semantics (counters add, gauges keep maxima, buckets align), and a
  registry survives the engine's payload round-trip and sweep
  aggregation.
* **Cost** — with tracing disabled the instrumentation stays within a
  small wall-clock budget (the bench gate holds 2%; the test allows 5%
  to absorb CI timer jitter).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import multiscalar_config, scalar_config
from repro.core.processor import MultiscalarProcessor
from repro.core.scalar import ScalarProcessor
from repro.isa import assemble
from repro.observability import (
    Category,
    EventBus,
    Histogram,
    MetricsRegistry,
    chrome_trace,
    collect_metrics,
    render_flamegraph,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads import WORKLOADS

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

# A loop with a memory recurrence through one location: exercises task
# assignment, ring forwards, ARB activity, and (timing-dependent)
# memory-order squashes — so the golden trace pins every event family.
RECURRENCE = """
        .data
cell:   .word 1
        .text
        .task init targets=loop creates=$t0,$t1,$t9
        .task loop targets=loop,done creates=$t0
        .task done targets=halt creates=$v0,$a0,$t2
init:   la $t9, cell
        li $t1, 30
        li $t0, 0 !fwd
        j loop !stop
loop:   lw $t2, 0($t9)
        addi $t2, $t2, 3
        sw $t2, 0($t9)
        addi $t0, $t0, 1 !fwd
        bne $t0, $t1, loop !stop
done:   lw $t2, 0($t9)
        li $v0, 1
        move $a0, $t2
        syscall
        halt
        .entry init
"""


def _traced_multiscalar(program, units=4, fast_path=True, jit=True,
                        categories=Category.ALL, window=None):
    processor = MultiscalarProcessor(
        program, multiscalar_config(units, fast_path=fast_path, jit=jit))
    bus = EventBus(categories, window=window).attach(processor)
    result = processor.run()
    return processor, bus, result


def _golden_trace():
    program = assemble(RECURRENCE)
    processor, bus, result = _traced_multiscalar(program, units=2)
    return chrome_trace(bus, num_units=2, total_cycles=result.cycles,
                        label="golden")


# ------------------------------------------------------------ categories

def test_category_parse():
    assert Category.parse("all") is Category.ALL
    assert Category.parse("") is Category.ALL
    assert Category.parse("task,ring") == Category.TASK | Category.RING
    with pytest.raises(ValueError, match="unknown event category"):
        Category.parse("task,bogus")


def test_mask_and_window_filtering():
    program = WORKLOADS["cmp"].multiscalar_program()
    _, full, result = _traced_multiscalar(program)
    _, task_only, _ = _traced_multiscalar(program,
                                          categories=Category.TASK)
    assert 0 < len(task_only) < len(full)
    assert all(event.cat == int(Category.TASK) for event in task_only)
    mid = result.cycles // 2
    _, windowed, _ = _traced_multiscalar(program, window=(0, mid))
    assert 0 < len(windowed) < len(full)
    assert all(event.ts < mid for event in windowed)
    assert windowed.dropped > 0
    expected = [event.key() for event in full
                if event.ts < mid]
    assert [event.key() for event in windowed] == expected


# -------------------------------------------------------- stream identity

@pytest.mark.parametrize("name", ["cmp", "wc"])
def test_event_stream_identical_fast_vs_reference(name):
    program = WORKLOADS[name].multiscalar_program()
    _, fast, _ = _traced_multiscalar(program, fast_path=True)
    _, ref, _ = _traced_multiscalar(program, fast_path=False)
    assert [e.key() for e in fast] == [e.key() for e in ref]


def test_scalar_event_stream_identical_fast_vs_reference():
    program = WORKLOADS["wc"].scalar_program()
    streams = []
    for fast in (True, False):
        processor = ScalarProcessor(program,
                                    scalar_config(fast_path=fast))
        bus = EventBus(Category.ALL).attach(processor)
        processor.run()
        streams.append([e.key() for e in bus])
    assert streams[0] == streams[1] and streams[0]


@pytest.mark.parametrize("name", ["cmp", "wc"])
def test_event_stream_identical_jit_vs_interpreter(name):
    # Three-way: compiled jit bodies, the no-jit fast path, and the
    # per-cycle reference must emit byte-identical event streams.
    program = WORKLOADS[name].multiscalar_program()
    _, jit, _ = _traced_multiscalar(program, jit=True)
    _, nojit, _ = _traced_multiscalar(program, jit=False)
    _, ref, _ = _traced_multiscalar(program, jit=True, fast_path=False)
    jit_keys = [e.key() for e in jit]
    assert jit_keys == [e.key() for e in nojit]
    assert jit_keys == [e.key() for e in ref]
    assert jit_keys


def test_scalar_event_stream_identical_jit_vs_interpreter():
    program = WORKLOADS["wc"].scalar_program()
    streams = []
    for jit in (True, False):
        processor = ScalarProcessor(program, scalar_config(jit=jit))
        bus = EventBus(Category.ALL).attach(processor)
        processor.run()
        streams.append([e.key() for e in bus])
    assert streams[0] == streams[1] and streams[0]


def test_event_stream_identical_across_checkpoint_resume():
    program = WORKLOADS["wc"].multiscalar_program()
    config = multiscalar_config(4)
    _, whole, full_result = _traced_multiscalar(program)
    cut = full_result.cycles // 2

    first = MultiscalarProcessor(program, config)
    bus_a = EventBus(Category.ALL).attach(first)
    while not first.halted and first.cycle < cut:
        first.step()
    snapshot = first.state_dict()

    second = MultiscalarProcessor(program, config)
    second.load_state(snapshot)
    bus_b = EventBus(Category.ALL).attach(second)
    resumed = second.run()

    stitched = [e.key() for e in bus_a] + [e.key() for e in bus_b]
    assert stitched == [e.key() for e in whole]
    assert resumed.to_dict() == full_result.to_dict()


# ----------------------------------------------------------------- export

def test_chrome_trace_schema_and_tracks():
    program = WORKLOADS["wc"].multiscalar_program()
    _, bus, result = _traced_multiscalar(program)
    trace = chrome_trace(bus, num_units=4, total_cycles=result.cycles,
                         label="wc")
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    track_names = {(e["tid"], e["args"]["name"]) for e in events
                   if e.get("ph") == "M" and e["name"] == "thread_name"}
    named = {name for _, name in track_names}
    for unit in range(4):
        assert f"unit {unit}" in named
    for machine_track in ("sequencer", "ring", "ARB", "memory"):
        assert any(machine_track in name for name in named)
    names = {e["name"] for e in events}
    assert "send" in names and "deliver" in names
    # Retires close task slices rather than emitting instants.
    assert any(e["ph"] == "X" and e.get("args", {}).get("end") == "retire"
               for e in events)
    assert any(e["name"] == "arb_entries" and e["ph"] == "C"
               for e in events)


def test_trace_bytes_deterministic(tmp_path):
    program = assemble(RECURRENCE)
    paths = []
    for index in range(2):
        _, bus, result = _traced_multiscalar(program, units=2)
        trace = chrome_trace(bus, num_units=2,
                             total_cycles=result.cycles, label="golden")
        path = tmp_path / f"t{index}.json"
        write_chrome_trace(path, trace)
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_golden_trace_matches_committed_file():
    # Regenerate with:
    #   PYTHONPATH=src python tests/make_golden_trace.py
    produced = _golden_trace()
    assert validate_chrome_trace(produced) == []
    golden = json.loads(GOLDEN_PATH.read_text())
    assert produced == golden, (
        "trace output drifted from tests/data/golden_trace.json; if "
        "the change is intentional, regenerate with "
        "PYTHONPATH=src python tests/make_golden_trace.py")


def test_golden_trace_stable_under_fast_path_toggle():
    program = assemble(RECURRENCE)
    _, fast, fast_result = _traced_multiscalar(program, units=2)
    _, ref, ref_result = _traced_multiscalar(program, units=2,
                                             fast_path=False)
    fast_trace = chrome_trace(fast, num_units=2,
                              total_cycles=fast_result.cycles,
                              label="golden")
    ref_trace = chrome_trace(ref, num_units=2,
                             total_cycles=ref_result.cycles,
                             label="golden")
    assert fast_trace == ref_trace


def test_golden_trace_stable_under_jit_toggle():
    # The committed golden file is produced with the jit on (the
    # default); the interpreter must serialize the exact same bytes.
    program = assemble(RECURRENCE)
    _, bus, result = _traced_multiscalar(program, units=2, jit=False)
    nojit_trace = chrome_trace(bus, num_units=2,
                               total_cycles=result.cycles,
                               label="golden")
    assert nojit_trace == json.loads(GOLDEN_PATH.read_text())


def test_flamegraph_renders_section3_rows():
    program = WORKLOADS["wc"].multiscalar_program()
    _, _, result = _traced_multiscalar(program)
    text = render_flamegraph(result)
    for row in ("useful", "non_useful", "no_computation", "idle",
                "inter_task", "intra_task"):
        assert row in text


# ---------------------------------------------------------------- metrics

def test_histogram_buckets_and_merge():
    h = Histogram()
    for value in (0, 1, 5, 1000):
        h.observe(value)
    other = Histogram()
    other.observe(5)
    h.merge(other)
    assert h.count == 5
    assert h.mean == pytest.approx((0 + 1 + 5 + 1000 + 5) / 5)
    assert Histogram.from_dict(h.to_dict()).to_dict() == h.to_dict()


def test_registry_merge_semantics():
    a = MetricsRegistry()
    a.count("events", 3)
    a.gauge("peak", 10)
    a.observe("lat", 4)
    b = MetricsRegistry()
    b.count("events", 2)
    b.gauge("peak", 7)
    b.observe("lat", 9)
    a.merge(b)
    assert a.counters["events"] == 5
    assert a.gauges["peak"] == 10          # gauges keep the maximum
    assert a.histograms["lat"].count == 2
    round_tripped = MetricsRegistry.from_dict(a.to_dict())
    assert round_tripped.to_dict() == a.to_dict()
    assert "events" in a.render()


def test_collect_metrics_covers_the_machine():
    program = WORKLOADS["wc"].multiscalar_program()
    processor = MultiscalarProcessor(program, multiscalar_config(4))
    result = processor.run()
    registry = collect_metrics(processor)
    assert registry.gauges["sim.cycles"] == result.cycles
    for key in ("task.retired", "ring.sends", "arb.loads",
                "predict.predictions", "bus.requests",
                "cycles.useful", "pipe.committed"):
        assert key in registry.counters, key
    assert registry.histograms["unit.committed"].count == 4


def test_metrics_round_trip_through_engine_payload():
    from repro.engine.job import (
        execute,
        metrics_from_payload,
        multiscalar_job,
    )

    payload = execute(multiscalar_job("cmp", units=2))
    registry = metrics_from_payload(payload)
    assert registry is not None
    assert registry.counters["task.retired"] > 0
    # Payloads written before metrics existed read back as "none".
    assert metrics_from_payload({"type": "multiscalar", "result": {}}) \
        is None
    rehydrated = json.loads(json.dumps(payload))
    assert metrics_from_payload(rehydrated).to_dict() \
        == registry.to_dict()


def test_sweep_aggregates_metrics_across_grid():
    from repro.engine.store import ResultStore
    from repro.engine.sweep import SweepRequest, run_sweep

    request = SweepRequest(workloads=("cmp",), units=(2,))
    store = ResultStore()
    summary = run_sweep(request, store)
    assert summary.ok and summary.metrics is not None
    fresh_total = summary.metrics.counters["task.retired"]
    assert fresh_total > 0
    # A warm re-run aggregates the same totals from cached payloads.
    warm = run_sweep(request, store)
    assert warm.cache_hits == warm.total_jobs
    assert warm.metrics.counters["task.retired"] == fresh_total


# ------------------------------------------------------------------- cost

def test_disabled_tracing_overhead_within_budget():
    from repro.harness.bench import measure_trace_overhead

    # The bench gate holds 2%; the test budget is looser because CI
    # wall clocks jitter far more than a dedicated bench run.
    measured = measure_trace_overhead(repeats=3, budget=0.05)
    assert measured["overhead"] <= 0.05, measured


# ------------------------------------------------------------------ tools

def test_doccheck_passes_on_this_tree():
    from repro.tools.doccheck import run_doccheck

    assert run_doccheck() == []


def test_validate_trace_tool(tmp_path):
    from repro.tools.validate_trace import validate_file

    good = tmp_path / "good.json"
    write_chrome_trace(good, _golden_trace())
    assert validate_file(str(good)) == []
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
    assert validate_file(str(bad))
    assert validate_file(str(tmp_path / "missing.json"))
