"""MinC: a small C-like language compiled to the multiscalar ISA.

This is the reproduction's stand-in for the paper's modified GCC 2.5.8.
MinC supports ``int`` and ``float`` scalars (floats are IEEE doubles),
global and stack arrays, pointers-as-integers with byte/word intrinsics,
functions, and the usual statement forms. A loop marked ``parallel``
nominates its body as a multiscalar task; :func:`compile_and_annotate`
runs the full pipeline source → assembly → annotated multiscalar binary.

Intrinsics: ``print_int(e)``, ``print_char(e)``, ``print_str("...")``,
``exit()``, ``__lb(addr)``/``__lbu(addr)`` (load byte), ``__sb(addr,
v)`` (store byte), ``__lw(addr)``/``__sw(addr, v)`` (load/store word
through a computed address), ``float(e)``/``int(e)`` conversions, and
``alloc(bytes)`` (a bump allocator over the heap segment).
"""

from repro.minic.lexer import LexError, tokenize
from repro.minic.parser import ParseError, parse
from repro.minic.codegen import CodegenError, CompiledUnit, compile_minic
from repro.minic.driver import compile_and_annotate, compile_scalar

__all__ = [
    "CodegenError",
    "CompiledUnit",
    "LexError",
    "ParseError",
    "compile_and_annotate",
    "compile_minic",
    "compile_scalar",
    "parse",
    "tokenize",
]
