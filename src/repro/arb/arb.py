"""Address Resolution Buffer.

The ARB holds the speculative memory operations of all active tasks:

* loads from a task read the *nearest predecessor's* (or their own)
  speculative store to each byte, falling back to committed memory;
* every load records, per byte, which store it read from, so that a
  later-arriving store from an *earlier* task can be recognized as a
  memory-order violation ("a load from a successor unit occurred before
  a store from a predecessor unit");
* the data cache is updated only when a task retires: the head task's
  merged stores are drained to committed memory and its records freed;
* squashing a task discards its records without touching memory.

Tasks are identified by monotonically increasing sequence numbers
assigned by the sequencer, which gives the ARB a total order among
active tasks. Byte-granularity tracking (as 4-byte masks per word
entry) keeps sub-word stores precise: a ``sb`` only conflicts with loads
that actually read that byte.

Capacity is per data bank (256 entries, i.e. tracked word addresses, per
bank in the paper's configuration). When a non-head operation needs a
new entry in a full bank, :class:`ARBFullError` is raised and the
processor applies its full-ARB policy (squash tasks, or stall all units
but the head — Section 2.3 discusses both). Head operations never need
new storage: head stores are checked for violations and then written
straight to committed memory, and head loads do not record load bits
because no predecessor can invalidate them.
"""

from __future__ import annotations

import base64
from dataclasses import asdict, dataclass

from repro.isa.memory_image import SparseMemory


class ARBFullError(Exception):
    """A speculative operation needs a new entry in a full ARB bank."""

    def __init__(self, bank: int) -> None:
        super().__init__(f"ARB bank {bank} is full")
        self.bank = bank


class _Entry:
    """Speculative state for one word address.

    ``stores`` maps task seq -> (byte mask, 4-byte buffer); ``loads``
    maps task seq -> (byte mask read, per-byte source seq). A source of
    ``-1`` means the byte was read from committed memory.
    """

    __slots__ = ("stores", "loads")

    def __init__(self) -> None:
        self.stores: dict[int, tuple[int, bytearray]] = {}
        self.loads: dict[int, tuple[int, list[int]]] = {}

    def empty(self) -> bool:
        return not self.stores and not self.loads


@dataclass
class ARBStats:
    loads: int = 0
    stores: int = 0
    violations: int = 0
    forwards: int = 0          # loads satisfied by a speculative store
    peak_entries: int = 0
    full_events: int = 0


class AddressResolutionBuffer:
    """Speculative memory state for the whole multiscalar processor."""

    def __init__(self, memory: SparseMemory, num_banks: int,
                 block_bits: int, entries_per_bank: int) -> None:
        self.memory = memory
        self.num_banks = num_banks
        self.block_bits = block_bits
        self.entries_per_bank = entries_per_bank
        self._entries: dict[int, _Entry] = {}
        self._bank_counts = [0] * num_banks
        self._by_seq: dict[int, set[int]] = {}
        self.stats = ARBStats()

    # ------------------------------------------------------------ helpers

    def _bank_of_word(self, word_addr: int) -> int:
        return ((word_addr << 2) >> self.block_bits) % self.num_banks

    def _get_entry(self, word_addr: int, seq: int) -> _Entry:
        entry = self._entries.get(word_addr)
        if entry is None:
            bank = self._bank_of_word(word_addr)
            if self._bank_counts[bank] >= self.entries_per_bank:
                self.stats.full_events += 1
                raise ARBFullError(bank)
            entry = _Entry()
            self._entries[word_addr] = entry
            self._bank_counts[bank] += 1
            self.stats.peak_entries = max(self.stats.peak_entries,
                                          len(self._entries))
        self._by_seq.setdefault(seq, set()).add(word_addr)
        return entry

    def _visible_byte(self, entry: _Entry | None, word_addr: int,
                      byte: int, seq: int) -> tuple[int, int]:
        """Value and source seq of one byte as seen by task ``seq``."""
        best_seq = -1
        value = None
        if entry is not None:
            for store_seq, (mask, data) in entry.stores.items():
                if store_seq <= seq and store_seq > best_seq and \
                        mask & (1 << byte):
                    best_seq = store_seq
                    value = data[byte]
        if value is None:
            value = self.memory.read_byte((word_addr << 2) + byte)
            best_seq = -1
        return value, best_seq

    # --------------------------------------------------------- operations

    def load(self, seq: int, addr: int, width: int,
             is_head: bool = False) -> bytes:
        """Perform a speculative load of ``width`` bytes at ``addr``.

        Returns the bytes visible to task ``seq`` (own stores first, then
        nearest predecessor stores, then committed memory) and records
        per-byte load sources for later violation detection. Raises
        :class:`ARBFullError` if a non-head load needs a new entry in a
        full bank.
        """
        self.stats.loads += 1
        if not addr & 3:
            # Aligned word (and doubleword as two words): one entry
            # lookup and one record update per word instead of four.
            if width == 4:
                out, forwarded = self._load_word(seq, addr >> 2, is_head)
                if forwarded:
                    self.stats.forwards += 1
                return bytes(out)
            if width == 8:
                word = addr >> 2
                lo, fwd_lo = self._load_word(seq, word, is_head)
                hi, fwd_hi = self._load_word(seq, word + 1, is_head)
                if fwd_lo or fwd_hi:
                    self.stats.forwards += 1
                return bytes(lo + hi)
        out = bytearray()
        forwarded = False
        for offset in range(width):
            byte_addr = addr + offset
            word_addr = byte_addr >> 2
            byte = byte_addr & 3
            if is_head:
                entry = self._entries.get(word_addr)
            else:
                entry = self._get_entry(word_addr, seq)
            value, source = self._visible_byte(entry, word_addr, byte, seq)
            if source >= 0:
                forwarded = True
            out.append(value)
            if not is_head:
                mask, sources = entry.loads.setdefault(
                    seq, (0, [1 << 62] * 4))
                new_mask = mask | (1 << byte)
                # Keep the *oldest* source per byte: if any read depended
                # on an old value, a store between that source and us is
                # a violation.
                sources[byte] = min(sources[byte], source)
                entry.loads[seq] = (new_mask, sources)
        if forwarded:
            self.stats.forwards += 1
        return bytes(out)

    def _load_word(self, seq: int, word_addr: int,
                   is_head: bool) -> tuple[bytearray, bool]:
        """One aligned word of a load: (4 bytes, any-byte-forwarded)."""
        if is_head:
            entry = self._entries.get(word_addr)
        else:
            entry = self._get_entry(word_addr, seq)
        best = None
        if entry is not None and entry.stores:
            for store_seq, (mask, data) in entry.stores.items():
                if store_seq <= seq:
                    if best is None:
                        best = [-1, -1, -1, -1]
                        vals = [0, 0, 0, 0]
                    for byte in (0, 1, 2, 3):
                        if mask & (1 << byte) and store_seq > best[byte]:
                            best[byte] = store_seq
                            vals[byte] = data[byte]
        out = bytearray(4)
        forwarded = False
        base = word_addr << 2
        read_byte = self.memory.read_byte
        if best is None:
            for byte in (0, 1, 2, 3):
                out[byte] = read_byte(base + byte)
        else:
            for byte in (0, 1, 2, 3):
                if best[byte] >= 0:
                    out[byte] = vals[byte]
                    forwarded = True
                else:
                    out[byte] = read_byte(base + byte)
        if not is_head:
            record = entry.loads.get(seq)
            if record is None:
                sources = [1 << 62] * 4
                mask = 0
            else:
                mask, sources = record
            if best is None:
                for byte in (0, 1, 2, 3):
                    if sources[byte] > -1:
                        sources[byte] = -1
            else:
                for byte in (0, 1, 2, 3):
                    if best[byte] < sources[byte]:
                        sources[byte] = best[byte]
            entry.loads[seq] = (mask | 0xF, sources)
        return out, forwarded

    def reserve(self, seq: int, addr: int, width: int) -> None:
        """Reserve ARB space for an upcoming store of ``width`` bytes.

        Called when a store *issues*, so that the commit-time
        :meth:`store` can never run out of space (a committed store
        cannot be retried). Raises :class:`ARBFullError` if a new entry
        would be needed in a full bank.
        """
        first = addr >> 2
        last = (addr + width - 1) >> 2
        for word_addr in range(first, last + 1):
            entry = self._get_entry(word_addr, seq)
            entry.stores.setdefault(seq, (0, bytearray(4)))

    def store(self, seq: int, addr: int, data: bytes,
              is_head: bool = False) -> int | None:
        """Perform a speculative store.

        Returns the sequence number of the earliest successor task whose
        earlier load is violated by this store (that task and everything
        after it must squash), or None. Head stores with no room write
        committed memory directly after the violation check.
        """
        self.stats.stores += 1
        if not addr & 3:
            width = len(data)
            if width == 4:
                violator = self._store_word(seq, addr >> 2, data, is_head)
                if violator is not None:
                    self.stats.violations += 1
                return violator
            if width == 8:
                word = addr >> 2
                lo = self._store_word(seq, word, data[:4], is_head)
                hi = self._store_word(seq, word + 1, data[4:], is_head)
                violator = (lo if hi is None
                            else hi if lo is None else min(lo, hi))
                if violator is not None:
                    self.stats.violations += 1
                return violator
        violator: int | None = None
        for offset, value in enumerate(data):
            byte_addr = addr + offset
            word_addr = byte_addr >> 2
            byte = byte_addr & 3
            entry = self._entries.get(word_addr)
            if entry is not None:
                for load_seq, (mask, sources) in entry.loads.items():
                    # A successor's earlier load is violated if it read
                    # from an older task (< seq) *or* from this task's
                    # own earlier store to the byte (== seq), which this
                    # store now supersedes.
                    if load_seq > seq and mask & (1 << byte) and \
                            sources[byte] <= seq:
                        if violator is None or load_seq < violator:
                            violator = load_seq
            if is_head and entry is None:
                # Non-speculative and nothing tracked: write through.
                self.memory.write_byte(byte_addr, value)
                continue
            try:
                entry = self._get_entry(word_addr, seq)
            except ARBFullError:
                if not is_head:
                    raise
                self.memory.write_byte(byte_addr, value)
                continue
            mask, buf = entry.stores.setdefault(seq, (0, bytearray(4)))
            buf[byte] = value
            entry.stores[seq] = (mask | (1 << byte), buf)
        if violator is not None:
            self.stats.violations += 1
        return violator

    def _store_word(self, seq: int, word_addr: int, data: bytes,
                    is_head: bool) -> int | None:
        """One aligned word of a store: returns the min violator seq."""
        entry = self._entries.get(word_addr)
        violator: int | None = None
        if entry is not None and entry.loads:
            for load_seq, (mask, sources) in entry.loads.items():
                if load_seq > seq and mask & 0xF and \
                        (violator is None or load_seq < violator):
                    for byte in (0, 1, 2, 3):
                        if mask & (1 << byte) and sources[byte] <= seq:
                            violator = load_seq
                            break
        if is_head and entry is None:
            # Non-speculative and nothing tracked: write through.
            base = word_addr << 2
            write_byte = self.memory.write_byte
            for byte in (0, 1, 2, 3):
                write_byte(base + byte, data[byte])
            return violator
        if entry is None:
            entry = self._get_entry(word_addr, seq)
        else:
            self._by_seq.setdefault(seq, set()).add(word_addr)
        record = entry.stores.get(seq)
        if record is None:
            entry.stores[seq] = (0xF, bytearray(data))
        else:
            mask, buf = record
            buf[0:4] = data
            entry.stores[seq] = (mask | 0xF, buf)
        return violator

    # ------------------------------------------------------ commit/squash

    def commit_task(self, seq: int) -> None:
        """Drain the retiring task's stores to memory and free its records."""
        for word_addr in self._by_seq.pop(seq, ()):
            entry = self._entries.get(word_addr)
            if entry is None:
                continue
            record = entry.stores.pop(seq, None)
            if record is not None:
                mask, buf = record
                for byte in range(4):
                    if mask & (1 << byte):
                        self.memory.write_byte((word_addr << 2) + byte,
                                               buf[byte])
            entry.loads.pop(seq, None)
            self._drop_if_empty(word_addr, entry)

    def squash_task(self, seq: int) -> None:
        """Discard all speculative records of a squashed task."""
        for word_addr in self._by_seq.pop(seq, ()):
            entry = self._entries.get(word_addr)
            if entry is None:
                continue
            entry.stores.pop(seq, None)
            entry.loads.pop(seq, None)
            self._drop_if_empty(word_addr, entry)

    def _drop_if_empty(self, word_addr: int, entry: _Entry) -> None:
        if entry.empty():
            del self._entries[word_addr]
            self._bank_counts[self._bank_of_word(word_addr)] -= 1

    # -------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        entries = []
        for word_addr, entry in sorted(self._entries.items()):
            stores = [[seq, mask,
                       base64.b64encode(bytes(buf)).decode("ascii")]
                      for seq, (mask, buf) in sorted(entry.stores.items())]
            loads = [[seq, mask, list(sources)]
                     for seq, (mask, sources) in sorted(entry.loads.items())]
            entries.append([word_addr, stores, loads])
        return {"entries": entries,
                "by_seq": [[seq, sorted(words)]
                           for seq, words in sorted(self._by_seq.items())],
                "stats": asdict(self.stats)}

    def load_state(self, state: dict) -> None:
        self._entries = {}
        self._bank_counts = [0] * self.num_banks
        for word_addr, stores, loads in state["entries"]:
            entry = _Entry()
            for seq, mask, data in stores:
                entry.stores[seq] = (mask, bytearray(base64.b64decode(data)))
            for seq, mask, sources in loads:
                entry.loads[seq] = (mask, list(sources))
            self._entries[word_addr] = entry
            self._bank_counts[self._bank_of_word(word_addr)] += 1
        self._by_seq = {seq: set(words) for seq, words in state["by_seq"]}
        self.stats = ARBStats(**state["stats"])

    # -------------------------------------------------------- inspection

    def entry_count(self, bank: int | None = None) -> int:
        if bank is None:
            return len(self._entries)
        return self._bank_counts[bank]

    def is_empty(self) -> bool:
        return not self._entries
