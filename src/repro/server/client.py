"""Stdlib-only HTTP client for a running ``repro serve`` instance.

The same :class:`ServerClient` backs both CLI client modes
(``repro sweep --server URL`` and ``repro fuzz --server URL``) and the
tests. It speaks plain ``urllib`` — one request per call, no
connection reuse — which is exactly right for a job API where every
interesting wait happens server-side. Backpressure (HTTP 429) is
retried with the server's own ``Retry-After`` hint, bounded, so a
client pointed at a saturated server degrades to patience instead of
an error.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServerError(RuntimeError):
    """A server answer that is not what the caller asked for."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServerClient:
    """Submit/poll/fetch against one ``repro serve`` base URL."""

    def __init__(self, base_url: str, client_id: str = "",
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict, dict]:
        """One HTTP exchange; returns (status, headers, decoded body)."""
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as answer:
                status = answer.status
                headers = dict(answer.headers)
                blob = answer.read()
        except urllib.error.HTTPError as exc:
            status = exc.code
            headers = dict(exc.headers or {})
            blob = exc.read()
        except (urllib.error.URLError, OSError) as exc:
            reason = getattr(exc, "reason", None) or exc
            raise ServerError(
                0, f"cannot reach {self.base_url}: {reason}") from exc
        try:
            decoded = json.loads(blob.decode() or "null")
        except ValueError:
            decoded = {"error": blob.decode(errors="replace")}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return status, headers, decoded

    # ------------------------------------------------------------------ api

    def submit(self, envelope: dict, *, priority: str | None = None,
               fresh: bool = False, fault: dict | None = None,
               max_retries: int = 20) -> dict:
        """POST one job envelope; waits out up to ``max_retries``
        rounds of 429 backpressure using the server's ``Retry-After``."""
        body = dict(envelope)
        if priority is not None:
            body["priority"] = priority
        if self.client_id:
            body["client"] = self.client_id
        if fresh:
            body["fresh"] = True
        if fault:
            body["fault"] = fault
        for _ in range(max_retries + 1):
            status, headers, answer = self._request("POST", "/v1/jobs",
                                                    body)
            if status != 429:
                break
            time.sleep(min(5.0, float(headers.get("Retry-After", 1))))
        if status != 200:
            raise ServerError(status, answer.get("error", "submit failed"))
        return answer

    def status(self, key: str) -> dict:
        """The job's status record (raises :class:`ServerError` on 404)."""
        status, _, answer = self._request("GET", f"/v1/jobs/{key}")
        if status != 200:
            raise ServerError(status, answer.get("error", "no status"))
        return answer

    def result(self, key: str) -> dict | None:
        """The result payload, or ``None`` while the job is still
        pending; failed jobs raise with the server's error."""
        status, _, answer = self._request("GET", f"/v1/jobs/{key}/result")
        if status == 200:
            return answer
        if status == 202:
            return None
        raise ServerError(status, answer.get("error", "no result"))

    def wait(self, keys, poll: float = 0.2, timeout: float = 600.0,
             progress=None) -> dict[str, dict]:
        """Poll until every key is terminal; returns key → status
        record. ``progress(done, total)`` fires whenever the done
        count advances."""
        pending = list(dict.fromkeys(keys))
        records: dict[str, dict] = {}
        deadline = time.monotonic() + timeout
        reported = -1
        while pending:
            for key in list(pending):
                record = self.status(key)
                if record["status"] in ("done", "failed"):
                    records[key] = record
                    pending.remove(key)
            if progress is not None and len(records) != reported:
                reported = len(records)
                progress(reported, reported + len(pending))
            if pending:
                if time.monotonic() > deadline:
                    raise ServerError(
                        504, f"timed out waiting on {len(pending)} jobs")
                time.sleep(poll)
        return records

    def metrics(self) -> dict:
        """The server's merged metrics registry as a dict."""
        status, _, answer = self._request("GET", "/metrics?format=json")
        if status != 200:
            raise ServerError(status, answer.get("error", "no metrics"))
        return answer

    def queue(self) -> dict:
        """The live queue snapshot (depths, leases)."""
        status, _, answer = self._request("GET", "/v1/queue")
        if status != 200:
            raise ServerError(status, answer.get("error", "no queue"))
        return answer

    def health(self) -> dict:
        """The ``/healthz`` liveness record."""
        status, _, answer = self._request("GET", "/healthz")
        if status != 200:
            raise ServerError(status, answer.get("error", "unhealthy"))
        return answer
