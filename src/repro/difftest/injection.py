"""Backend-scoped fault injection for oracle self-validation.

Every simulator in this repository executes instructions through the
same :mod:`repro.isa.semantics` functions, which is exactly what makes
differential testing meaningful — and what makes validating the oracle
awkward: a bug planted in shared semantics changes the reference and
the machine under test identically, so nothing diverges.

This module provides the seam. The oracle wraps every backend run in
:func:`use_backend`, and :func:`inject_opcode_bug` installs a wrapper
around :func:`semantics.evaluate_alu` that corrupts the result of one
opcode only when the *current* backend matches — e.g. "the multiscalar
processor computes ``xor`` wrong", with the functional reference left
intact. Tests use it to assert the fuzzer catches and shrinks a planted
semantics bug; it must never be active outside a ``with`` block.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.isa import semantics
from repro.isa.memory_image import u32
from repro.isa.opcodes import Op

#: Kind label of the backend currently executing ("functional",
#: "scalar", or "multiscalar"); None outside oracle-controlled runs.
_current_backend: str | None = None


def current_backend() -> str | None:
    """The backend kind the oracle is currently running, if any."""
    return _current_backend


@contextmanager
def use_backend(kind: str):
    """Mark ``kind`` as the backend under execution (oracle internal)."""
    global _current_backend
    previous = _current_backend
    _current_backend = kind
    try:
        yield
    finally:
        _current_backend = previous


@contextmanager
def inject_opcode_bug(op: Op, backends: frozenset[str] | set[str] =
                      frozenset({"multiscalar"}), corrupt=None):
    """Make ``op`` compute a wrong result on the given backends only.

    ``corrupt`` maps the correct result to the wrong one; the default
    flips the low bit of an integer result (floats pass through, so the
    default is only meaningful for integer opcodes). The patch applies
    to every simulator that calls ``semantics.evaluate_alu`` through
    the module attribute — i.e. all of them — but misbehaves only when
    :func:`current_backend` is in ``backends``.
    """
    if corrupt is None:
        def corrupt(value):
            return u32(value ^ 1) if isinstance(value, int) else value
    real = semantics.evaluate_alu
    wanted = frozenset(backends)

    def buggy_evaluate_alu(instr, srcs):
        value = real(instr, srcs)
        if instr.op is op and _current_backend in wanted:
            return corrupt(value)
        return value

    semantics.evaluate_alu = buggy_evaluate_alu
    try:
        yield
    finally:
        semantics.evaluate_alu = real


@contextmanager
def inject_jit_guard_miss(mode: str = "stop"):
    """Plant a guard bug in the trace-JIT's generated executors.

    ``mode`` selects which guard family goes blind (see
    :func:`repro.jit.engine.set_injection`): ``"stop"`` makes compiled
    bodies ignore task-stop annotation bits, ``"taken-branch"`` makes
    them dispatch past a taken branch. Either way the JIT silently
    diverges from the interpreter while the reference backends stay
    honest — the JIT analogue of :func:`inject_opcode_bug`, used by the
    fuzz self-test to prove the ``-nojit`` differential axis actually
    catches compiled-code bugs. Compiled bodies are cached per
    injection mode, so entering and leaving the context cannot leak
    buggy code into clean runs.
    """
    from repro.jit import engine as jit_engine

    previous = jit_engine.current_injection()
    jit_engine.set_injection(mode)
    try:
        yield
    finally:
        jit_engine.set_injection(previous)


@contextmanager
def inject_livelock(after_retires: int = 0):
    """Silently block multiscalar task retirement after ``after_retires``
    tasks have retired.

    The head task then sits stopped-and-drained forever; its successors
    drain the forwarding ring, stall on unavailable head values, and the
    whole machine stops issuing — a livelock with no exception and no
    halt, exactly the failure mode the resilience watchdog exists to
    catch. Used by the watchdog tests and the chaos harness to assert a
    hang surfaces as a typed
    :class:`~repro.resilience.failures.LivelockError` naming the stuck
    unit, instead of spinning until the cycle budget dies.
    """
    from repro.core.processor import MultiscalarProcessor

    real = MultiscalarProcessor._try_retire

    def stuck_retire(self, cycle):
        if self.tasks_retired >= after_retires:
            return
        real(self, cycle)

    MultiscalarProcessor._try_retire = stuck_retire
    try:
        yield
    finally:
        MultiscalarProcessor._try_retire = real
