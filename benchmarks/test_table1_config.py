"""Table 1: functional-unit latencies (machine configuration).

Not a measurement — Table 1 defines the simulated machine. This bench
prints the configured latencies and verifies them against the paper.
"""

from repro.config import TABLE1_LATENCIES
from repro.harness import format_table1

PAPER_TABLE1 = {
    "int_alu": 1, "int_mul": 4, "int_div": 12,
    "sp_add": 2, "sp_mul": 4, "sp_div": 12,
    "dp_add": 2, "dp_mul": 5, "dp_div": 18,
    "mem_store": 1, "mem_load": 2, "branch": 1,
}


def test_table1_config(once):
    table = once(format_table1)
    print("\n" + table)
    assert TABLE1_LATENCIES == PAPER_TABLE1
