"""``repro.engine`` — sharded parallel simulation job engine.

Layers:

* :mod:`repro.engine.job` — the content-addressed job model
  (:class:`SimJob`) and in-process execution;
* :mod:`repro.engine.store` — the persistent on-disk result store;
* :mod:`repro.engine.scheduler` — the fault-tolerant worker pool;
* :mod:`repro.engine.sweep` — grid sweeps combining all three.

The one-job convenience path used by the harness runner lives here:
:func:`execute_cached` consults the persistent store, simulates on a
miss, persists the fresh payload, and returns the native result
object.
"""

from __future__ import annotations

from repro.engine.job import (
    SimJob,
    SimulationMismatchError,
    code_fingerprint,
    count_job,
    execute,
    multiscalar_job,
    result_from_payload,
    scalar_job,
)
from repro.engine.scheduler import (
    InjectedWorkerDeath,
    JobOutcome,
    PoolJob,
    RetryableJobError,
    WorkerPool,
)
from repro.engine.store import (
    ResultStore,
    default_cache_dir,
    persistent_cache_enabled,
)

__all__ = [
    "InjectedWorkerDeath",
    "JobOutcome",
    "PoolJob",
    "ResultStore",
    "RetryableJobError",
    "SimJob",
    "SimulationMismatchError",
    "WorkerPool",
    "code_fingerprint",
    "count_job",
    "default_cache_dir",
    "execute",
    "execute_cached",
    "multiscalar_job",
    "persistent_cache_enabled",
    "result_from_payload",
    "scalar_job",
]


def execute_cached(job: SimJob, store: ResultStore | None):
    """Run one job through the persistent store (serially, in-process).

    With ``store=None`` the job always simulates and nothing persists.
    Returns the native result object (:class:`ScalarResult`,
    :class:`MultiscalarResult`, or an ``int`` instruction count).
    """
    if store is None:
        return result_from_payload(execute(job))
    key = job.key()
    payload = store.get(key)
    if payload is None:
        payload = execute(job)
        store.put(key, payload, job=job.describe())
    return result_from_payload(payload)
